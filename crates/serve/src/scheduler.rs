//! The discrete-event fleet scheduler.
//!
//! One fleet-wide virtual clock, one event heap. Devices are full
//! simulated `System`s; the scheduler advances the one holding a job
//! in bounded quanta (eagerly simulating each slice when it is
//! dispatched, then scheduling the completion event at the fleet time
//! the slice ends). Everything is ordered by `(cycle, sequence)` with
//! a monotone sequence counter, so execution is a pure function of
//! the workload seed — no host threads, no wall clock, no hashmap
//! iteration order anywhere near a decision.
//!
//! Admission: two FIFO queues (priority 0 = interactive, 1 = batch)
//! with a shared depth bound; an arrival that would exceed the bound
//! gets a typed [`Rejection`] (terminal in open loop, retry-after-
//! backoff in closed loop). Dispatch prefers interactive work, batches
//! same-key compatible requests up to the class's batch limit, and
//! resumes parked jobs before starting new batch-class work.
//!
//! Preemption: a batch-priority job that pauses at a slice boundary
//! while interactive work is queued is snapshotted (the bit-exact
//! checkpoint of [`vip_core::System::save_snapshot`]) and parked; the
//! snapshot restores onto whichever device frees up first — migration
//! across devices is safe because every device in the fleet shares
//! one structural configuration fingerprint.
//!
//! Failure and recovery: a dispatch that dies — a typed
//! [`SimError`](vip_core::SimError) from the engine, or a chaos-model
//! device crash ([`ChaosConfig`]) — is a policy decision, never a
//! panic. The job retries with exponential backoff on whatever healthy
//! device frees up, restoring its last periodic snapshot where one
//! exists and re-running from admission otherwise; the sick device is
//! quarantined behind health probes (circuit-breaker style) or
//! permanently decommissioned; jobs that exhaust their attempts, miss
//! their deadline, or arrive while surviving capacity is below the
//! shedding floor resolve to typed terminal statuses ([`Terminal`]).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::path::PathBuf;

use vip_core::{RunOutcome, SimError, System, SystemConfig};
use vip_faults::{FaultConfig, PPM_SCALE};
use vip_mem::MemConfig;
use vip_rng::SplitMix64;
use vip_snap::{read_header, write_header, Fingerprint, Reader, SnapError, Snapshot, Writer};

use crate::cache::{CacheKey, ProgramCache};
use crate::chaos::{ChaosConfig, ChaosStats, FailureKind, Terminal};
use crate::device::Engine;
use crate::durable::{DurableError, LoadedPoint, PointStore};
use crate::tiles::{ResultReader, TileClass};
use crate::workload::{LoadMode, Workload};

/// Fleet and policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulated devices in the pool.
    pub devices: usize,
    /// Shared admission bound: queued requests across both priority
    /// classes may not exceed this.
    pub queue_depth: usize,
    /// Device slice length in cycles; preemption and completion are
    /// only observed at slice boundaries.
    pub quantum: u64,
    /// Upper bound on requests batched into one tile (further capped
    /// by each class's [`TileClass::batch_limit`]).
    pub batch_max: usize,
    /// Stepping engine for every device.
    pub engine: Engine,
    /// Per-device memory configuration (devices are single-vault).
    pub mem: MemConfig,
    /// Where tuned schedule artifacts live.
    pub schedule_dir: PathBuf,
    /// The chaos model: seeded device failures and the recovery
    /// policy. `None` runs the fleet clean (failures in staged tiles
    /// still resolve to typed terminal statuses, with no retries).
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            devices: 4,
            queue_depth: 64,
            quantum: 100_000,
            batch_max: 8,
            engine: Engine::Fast,
            mem: MemConfig::baseline(),
            schedule_dir: vip_kernels::schedule_store::dir(),
            chaos: None,
        }
    }
}

impl ServeConfig {
    /// Absorbs every result-affecting knob into a run fingerprint —
    /// the key durable run directories are filed under, so persisted
    /// state from a differently-configured run can never be replayed
    /// into this one. Chaos knobs are folded in through their
    /// canonical snapshot encoding.
    pub(crate) fn absorb(&self, f: &mut Fingerprint) {
        f.push_usize(self.devices);
        f.push_usize(self.queue_depth);
        f.push_u64(self.quantum);
        f.push_usize(self.batch_max);
        f.push_bytes(self.engine.label().as_bytes());
        f.push_u64(SystemConfig::single_vault(self.mem.clone()).snapshot_fingerprint());
        f.push_bytes(self.schedule_dir.to_string_lossy().as_bytes());
        match self.chaos {
            None => f.push_bool(false),
            Some(ch) => {
                f.push_bool(true);
                f.push_u64(ch.seed);
                for ppm in [
                    ch.crash_ppm,
                    ch.decommission_ppm,
                    ch.hang_ppm,
                    ch.flaky_ppm,
                    ch.probe_pass_ppm,
                ] {
                    f.push_u64(u64::from(ppm));
                }
                let mut w = Writer::new();
                ch.faults.save(&mut w);
                f.push_bytes(&w.into_bytes());
                f.push_u64(u64::from(ch.checkpoint_every));
                f.push_u64(u64::from(ch.max_attempts));
                f.push_u64(ch.retry_backoff);
                f.push_u64(ch.quarantine);
                f.push_u64(u64::from(ch.max_strikes));
                f.push_u64(ch.deadline);
                f.push_u64(u64::from(ch.shed_floor_pct));
            }
        }
    }
}

/// Why an arrival or queued request was terminally refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The shared queue bound was already met.
    QueueFull {
        /// The rejected request's priority class.
        priority: u8,
        /// Queue occupancy at the instant of rejection.
        depth: usize,
    },
    /// The per-job deadline expired before the request could (re)run.
    Timeout {
        /// The configured deadline in fleet cycles.
        deadline: u64,
        /// Fleet cycles the request had waited when it was cut.
        waited: u64,
    },
    /// Surviving healthy capacity fell below the shedding floor and
    /// the request's priority class was sacrificed.
    Shed {
        /// Healthy devices at the instant of shedding.
        healthy: usize,
        /// Total devices in the fleet.
        devices: usize,
    },
}

impl Snapshot for Rejection {
    fn save(&self, w: &mut Writer) {
        match *self {
            Rejection::QueueFull { priority, depth } => {
                w.u8(0);
                w.u8(priority);
                w.usize(depth);
            }
            Rejection::Timeout { deadline, waited } => {
                w.u8(1);
                w.u64(deadline);
                w.u64(waited);
            }
            Rejection::Shed { healthy, devices } => {
                w.u8(2);
                w.usize(healthy);
                w.usize(devices);
            }
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Rejection::QueueFull {
                priority: r.u8()?,
                depth: r.usize()?,
            },
            1 => Rejection::Timeout {
                deadline: r.u64()?,
                waited: r.u64()?,
            },
            2 => Rejection::Shed {
                healthy: r.usize()?,
                devices: r.usize()?,
            },
            _ => return Err(SnapError::Corrupt("rejection tag")),
        })
    }
}

/// The full life of one request, as the report records it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Request id (issue order).
    pub id: u64,
    /// Issuing client (closed loop only).
    pub client: Option<usize>,
    /// What was asked for.
    pub class: TileClass,
    /// The class's schedule-store shape key.
    pub key: String,
    /// Priority class (0 interactive, 1 batch).
    pub priority: u8,
    /// Fleet cycle the request (finally) arrived.
    pub arrival: u64,
    /// Fleet cycle its tile started running, if it ever did.
    pub dispatch: Option<u64>,
    /// Fleet cycle its results were read back.
    pub completion: Option<u64>,
    /// Device the tile finished on.
    pub device: Option<usize>,
    /// Requests sharing its tile (1 = unbatched).
    pub batch: usize,
    /// Times its job moved to a different device via snapshot.
    pub migrations: u32,
    /// Closed-loop admission retries before it got in.
    pub retries: u32,
    /// Terminal rejection, if any (queue-full, timeout, shed).
    pub rejection: Option<Rejection>,
    /// Dispatch attempts its job consumed (0 if never dispatched;
    /// >1 means the job failed and was re-dispatched).
    pub attempts: u32,
    /// Every device its job ran slices on, in first-visit order
    /// (consecutive duplicates collapsed).
    pub devices: Vec<usize>,
    /// The typed terminal status (never [`Terminal::Pending`] in a
    /// returned outcome).
    pub status: Terminal,
    /// FNV-1a hash of the request's result blob.
    pub result_hash: u64,
}

impl RequestRecord {
    /// Queueing + service latency in cycles, if the request completed.
    #[must_use]
    pub fn latency(&self) -> Option<u64> {
        self.completion.map(|c| c - self.arrival)
    }
}

impl Snapshot for RequestRecord {
    fn save(&self, w: &mut Writer) {
        w.u64(self.id);
        self.client.save(w);
        self.class.save(w);
        self.key.save(w);
        w.u8(self.priority);
        w.u64(self.arrival);
        self.dispatch.save(w);
        self.completion.save(w);
        self.device.save(w);
        w.usize(self.batch);
        w.u32(self.migrations);
        w.u32(self.retries);
        self.rejection.save(w);
        w.u32(self.attempts);
        self.devices.save(w);
        self.status.save(w);
        w.u64(self.result_hash);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(RequestRecord {
            id: r.u64()?,
            client: Option::restore(r)?,
            class: TileClass::restore(r)?,
            key: String::restore(r)?,
            priority: r.u8()?,
            arrival: r.u64()?,
            dispatch: Option::restore(r)?,
            completion: Option::restore(r)?,
            device: Option::restore(r)?,
            batch: r.usize()?,
            migrations: r.u32()?,
            retries: r.u32()?,
            rejection: Option::restore(r)?,
            attempts: r.u32()?,
            devices: Vec::restore(r)?,
            status: Terminal::restore(r)?,
            result_hash: r.u64()?,
        })
    }
}

/// Everything one serving run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Per-request records, in id order, one per issued request.
    pub records: Vec<RequestRecord>,
    /// Fleet cycle the last event settled.
    pub makespan: u64,
    /// Slice-boundary preemptions taken.
    pub preemptions: u64,
    /// Parked jobs resumed on a device other than the one they left.
    pub migrations: u64,
    /// Tiles dispatched serving more than one request.
    pub batches: u64,
    /// Total tiles dispatched.
    pub dispatches: u64,
    /// High-water queue occupancy per priority class.
    pub max_queue_depth: [usize; 2],
    /// Arrivals refused admission at the queue bound (terminal in open
    /// loop, retried in closed loop). Deadline and shedding rejections
    /// are counted in [`ChaosStats`] instead.
    pub rejections: u64,
    /// Busy cycles per device (failed slices included — the device
    /// was occupied while they ran).
    pub device_busy: Vec<u64>,
    /// Prepared-program cache hits over the run.
    pub cache_hits: u64,
    /// Prepared-program cache misses (program builds) over the run.
    pub cache_misses: u64,
    /// Chaos and recovery counters.
    pub chaos: ChaosStats,
}

impl Snapshot for ServeOutcome {
    fn save(&self, w: &mut Writer) {
        self.records.save(w);
        w.u64(self.makespan);
        w.u64(self.preemptions);
        w.u64(self.migrations);
        w.u64(self.batches);
        w.u64(self.dispatches);
        self.max_queue_depth.save(w);
        w.u64(self.rejections);
        self.device_busy.save(w);
        w.u64(self.cache_hits);
        w.u64(self.cache_misses);
        self.chaos.save(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(ServeOutcome {
            records: Vec::restore(r)?,
            makespan: r.u64()?,
            preemptions: r.u64()?,
            migrations: r.u64()?,
            batches: r.u64()?,
            dispatches: r.u64()?,
            max_queue_depth: <[usize; 2]>::restore(r)?,
            rejections: r.u64()?,
            device_busy: Vec::restore(r)?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            chaos: ChaosStats::restore(r)?,
        })
    }
}

/// A queued request awaiting dispatch.
#[derive(Debug, Clone)]
struct Pending {
    id: u64,
    class: TileClass,
    priority: u8,
}

/// The scheduler's view of one in-flight tile.
#[derive(Debug)]
struct JobMeta {
    reqs: Vec<u64>,
    class: TileClass,
    limit: u64,
    reader: ResultReader,
    home: usize,
    /// Dispatch attempts so far (1 = first).
    attempt: u32,
    /// The job failed at least once and was re-dispatched.
    recovered: bool,
    /// The most recent recovery restored a snapshot (vs. restaged).
    via_snapshot: bool,
    /// What killed the most recent attempt, if any.
    last_failure: Option<FailureKind>,
    /// Last periodic checkpoint, bit-exact, restorable on any device.
    ckpt: Option<Vec<u8>>,
    /// Paused slices since the last periodic checkpoint.
    slices_since_ckpt: u32,
}

/// A job parked mid-flight: either a bit-exact snapshot (preemption,
/// checkpoint recovery) or a restage-from-admission marker.
#[derive(Debug)]
struct Parked {
    meta: JobMeta,
    /// `Some`: restore these bytes. `None`: re-stage the class from
    /// scratch (the job had no usable checkpoint).
    snapshot: Option<Vec<u8>>,
    /// Earliest fleet cycle this job may dispatch (retry backoff).
    not_before: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SliceEnd {
    Done,
    Paused,
    /// The slice died with a typed failure; the job needs recovery.
    Failed(FailureKind),
}

struct Running {
    meta: JobMeta,
    sys: Box<System>,
    end: SliceEnd,
}

/// One device's health, as the recovery policy sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Healthy,
    Quarantined,
    Dead,
}

/// Per-device chaos state: the device's own draw stream, its wired
/// fault injector (if the flaky draw selected it), and its health.
struct DeviceChaos {
    rng: SplitMix64,
    flaky: bool,
    faults: FaultConfig,
    health: Health,
    /// Failed health probes since the last pass (the circuit
    /// breaker's open count).
    strikes: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvKind {
    /// Request with this id arrives (or retries admission).
    Arrive(u64),
    /// The device's current slice ends.
    Device(usize),
    /// A quarantined device runs its health probe.
    Probe(usize),
    /// A retry backoff expired: try dispatching idle devices.
    Kick,
}

impl EvKind {
    /// `(tag, argument)` encoding for journal records and checkpoints.
    fn encode(self) -> (u8, u64) {
        match self {
            EvKind::Arrive(id) => (0, id),
            EvKind::Device(d) => (1, d as u64),
            EvKind::Probe(d) => (2, d as u64),
            EvKind::Kick => (3, 0),
        }
    }

    fn decode(tag: u8, arg: u64) -> Result<Self, SnapError> {
        Ok(match tag {
            0 => EvKind::Arrive(arg),
            1 => EvKind::Device(
                usize::try_from(arg).map_err(|_| SnapError::Corrupt("device index"))?,
            ),
            2 => {
                EvKind::Probe(usize::try_from(arg).map_err(|_| SnapError::Corrupt("device index"))?)
            }
            3 => EvKind::Kick,
            _ => return Err(SnapError::Corrupt("event kind tag")),
        })
    }
}

type EventHeap = BinaryHeap<Reverse<(u64, u64, EvKind)>>;

/// The read-only context the event handlers share.
struct Ctx<'a> {
    cfg: &'a ServeConfig,
    dev_cfg: &'a SystemConfig,
    cache: &'a ProgramCache,
    workload: &'a Workload,
}

/// Shared mutable bookkeeping the event handlers thread through.
struct Fleet {
    heap: EventHeap,
    seq: u64,
    issued: u64,
    /// Events popped and handled so far — the write-ahead journal's
    /// record ordinal and the fleet-checkpoint cadence counter.
    events_settled: u64,
    client_of: HashMap<u64, usize>,
    think_rngs: Vec<SplitMix64>,
    queues: [VecDeque<Pending>; 2],
    parked: VecDeque<Parked>,
    devices: Vec<Option<Running>>,
    chaos: Vec<DeviceChaos>,
    outcome: ServeOutcome,
}

impl Fleet {
    fn post(&mut self, at: u64, kind: EvKind) {
        self.heap.push(Reverse((at, self.seq, kind)));
        self.seq += 1;
    }

    /// Issues request number `issued` at fleet time `at` and returns
    /// its id (the record is appended; the arrival event is not).
    fn issue(&mut self, workload: &Workload, at: u64, client: Option<usize>) -> u64 {
        let id = self.issued;
        self.issued += 1;
        let entry = workload.draw(id);
        self.outcome.records.push(RequestRecord {
            id,
            client,
            class: entry.class,
            key: entry.class.key(),
            priority: entry.priority,
            arrival: at,
            dispatch: None,
            completion: None,
            device: None,
            batch: 1,
            migrations: 0,
            retries: 0,
            rejection: None,
            attempts: 0,
            devices: Vec::new(),
            status: Terminal::Pending,
            result_hash: 0,
        });
        if let Some(c) = client {
            self.client_of.insert(id, c);
        }
        id
    }

    /// Whether device `d` is idle and healthy enough to take work.
    fn device_available(&self, d: usize) -> bool {
        self.devices[d].is_none()
            && self
                .chaos
                .get(d)
                .is_none_or(|c| c.health == Health::Healthy)
    }

    /// Devices currently healthy (all of them when chaos is off).
    fn healthy_count(&self) -> usize {
        if self.chaos.is_empty() {
            self.devices.len()
        } else {
            self.chaos
                .iter()
                .filter(|c| c.health == Health::Healthy)
                .count()
        }
    }

    /// Devices not permanently decommissioned.
    fn alive_count(&self) -> usize {
        if self.chaos.is_empty() {
            self.devices.len()
        } else {
            self.chaos
                .iter()
                .filter(|c| c.health != Health::Dead)
                .count()
        }
    }

    /// Removes and returns the first parked job whose retry backoff
    /// has expired.
    fn take_parked(&mut self, now: u64) -> Option<Parked> {
        let i = self.parked.iter().position(|p| p.not_before <= now)?;
        self.parked.remove(i)
    }

    /// Appends `d` to each request's device trail (consecutive
    /// duplicates collapsed) and refreshes the attempt count.
    fn note_dispatch(&mut self, reqs: &[u64], attempt: u32, d: usize) {
        for req in reqs {
            let rec = &mut self.outcome.records[usize::try_from(*req).expect("id fits")];
            rec.attempts = attempt;
            if rec.devices.last() != Some(&d) {
                rec.devices.push(d);
            }
        }
    }

    /// A cheap FNV digest of the scheduler-visible state, journaled
    /// with every event so replay divergence is caught at the first
    /// differing event rather than at the end of the run.
    fn digest(&self) -> u64 {
        let mut f = Fingerprint::new();
        f.push_u64(self.seq);
        f.push_u64(self.issued);
        f.push_usize(self.outcome.records.len());
        f.push_u64(self.outcome.makespan);
        f.push_u64(self.outcome.dispatches);
        f.push_u64(self.outcome.preemptions);
        f.push_u64(self.outcome.migrations);
        f.push_u64(self.outcome.batches);
        f.push_u64(self.outcome.rejections);
        f.push_usize(self.queues[0].len());
        f.push_usize(self.queues[1].len());
        f.push_usize(self.parked.len());
        f.push_usize(self.devices.iter().filter(|d| d.is_some()).count());
        let c = &self.outcome.chaos;
        f.push_u64(
            c.crashes
                + c.induced_hangs
                + c.hang_failures
                + c.fault_failures
                + c.job_retries
                + c.quarantines
                + c.probes
                + c.decommissions
                + c.timeouts
                + c.shed
                + c.failed,
        );
        f.finish()
    }
}

/// One settled scheduler event, as the write-ahead journal records it.
struct StepEvent {
    /// Ordinal of this event (1-based count of settled events).
    index: u64,
    /// Fleet cycle the event fired.
    now: u64,
    /// What fired.
    kind: EvKind,
    /// [`Fleet::digest`] after handling the event.
    digest: u64,
}

/// Encodes one journal record payload.
fn event_payload(ev: &StepEvent) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(ev.index);
    w.u64(ev.now);
    let (tag, arg) = ev.kind.encode();
    w.u8(tag);
    w.u64(arg);
    w.u64(ev.digest);
    w.into_bytes()
}

/// Sets the request's terminal status (mirroring a rejection into the
/// legacy field) and, in closed loop, lets the issuing client move on
/// to its next request — terminal outcomes must not starve the loop.
fn resolve(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, id: u64, status: Terminal) {
    let rec = &mut fleet.outcome.records[usize::try_from(id).expect("id fits")];
    debug_assert_eq!(rec.status, Terminal::Pending, "double-resolved request");
    rec.status = status;
    if let Terminal::Rejected(r) = status {
        rec.rejection = Some(r);
    }
    if let LoadMode::Closed { think, .. } = ctx.workload.mode {
        if (fleet.issued as usize) < ctx.workload.requests {
            if let Some(&c) = fleet.client_of.get(&id) {
                let gap = fleet.think_rngs[c].below(2 * think + 1);
                let at = now + gap;
                let next = fleet.issue(ctx.workload, at, Some(c));
                fleet.post(at, EvKind::Arrive(next));
            }
        }
    }
}

/// Runs `workload` over the fleet described by `cfg` and returns the
/// full outcome. Deterministic: same config + same workload ⇒
/// identical outcome, field for field — with or without chaos.
///
/// # Panics
///
/// Panics if the fleet is empty, the queue bound is zero, or the
/// quantum is zero. A device failure (hang, trap, machine check,
/// chaos crash) is a policy outcome, not a panic.
#[must_use]
pub fn serve(cfg: &ServeConfig, workload: &Workload) -> ServeOutcome {
    let dev_cfg = SystemConfig::single_vault(cfg.mem.clone());
    let cache = ProgramCache::new();
    let ctx = Ctx {
        cfg,
        dev_cfg: &dev_cfg,
        cache: &cache,
        workload,
    };
    let mut fleet = init_fleet(&ctx);
    while step(&mut fleet, &ctx).is_some() {}
    finalize(fleet, &ctx)
}

/// Builds the fleet at cycle zero: chaos streams seeded, the
/// workload's initial arrivals posted, nothing dispatched yet.
fn init_fleet(ctx: &Ctx<'_>) -> Fleet {
    let cfg = ctx.cfg;
    let workload = ctx.workload;
    assert!(cfg.devices > 0, "fleet needs at least one device");
    assert!(cfg.queue_depth > 0, "queue bound must admit something");
    assert!(cfg.quantum > 0, "a zero quantum cannot make progress");

    let chaos_state = cfg.chaos.map_or_else(Vec::new, |ch| {
        (0..cfg.devices)
            .map(|d| {
                let mut rng = ch.device_rng(d);
                let flaky = ch.flaky_ppm > 0 && rng.below(PPM_SCALE) < u64::from(ch.flaky_ppm);
                DeviceChaos {
                    rng,
                    flaky,
                    faults: ch.device_faults(d),
                    health: Health::Healthy,
                    strikes: 0,
                }
            })
            .collect()
    });

    let mut fleet = Fleet {
        heap: BinaryHeap::new(),
        seq: 0,
        issued: 0,
        events_settled: 0,
        client_of: HashMap::new(),
        think_rngs: Vec::new(),
        queues: [VecDeque::new(), VecDeque::new()],
        parked: VecDeque::new(),
        devices: (0..cfg.devices).map(|_| None).collect(),
        chaos: chaos_state,
        outcome: ServeOutcome {
            records: Vec::with_capacity(workload.requests),
            makespan: 0,
            preemptions: 0,
            migrations: 0,
            batches: 0,
            dispatches: 0,
            max_queue_depth: [0, 0],
            rejections: 0,
            device_busy: vec![0; cfg.devices],
            cache_hits: 0,
            cache_misses: 0,
            chaos: ChaosStats::default(),
        },
    };

    match workload.mode {
        LoadMode::Open { mean_gap } => {
            let mut rng = workload.arrival_rng();
            let mut t = 0u64;
            for _ in 0..workload.requests {
                t += rng.below(2 * mean_gap + 1);
                let id = fleet.issue(workload, t, None);
                fleet.post(t, EvKind::Arrive(id));
            }
        }
        LoadMode::Closed { clients, think: _ } => {
            assert!(clients > 0, "closed loop needs at least one client");
            for c in 0..clients {
                fleet.think_rngs.push(workload.think_rng(c));
                if (fleet.issued as usize) < workload.requests {
                    let id = fleet.issue(workload, 0, Some(c));
                    fleet.post(0, EvKind::Arrive(id));
                }
            }
        }
    }
    fleet
}

/// Pops and fully handles the next event, or returns `None` when the
/// heap has drained (the run is over). The returned [`StepEvent`] is
/// what the write-ahead journal records for this step.
fn step(fleet: &mut Fleet, ctx: &Ctx<'_>) -> Option<StepEvent> {
    let Reverse((now, _, kind)) = fleet.heap.pop()?;
    fleet.outcome.makespan = fleet.outcome.makespan.max(now);
    match kind {
        EvKind::Arrive(id) => on_arrive(fleet, ctx, now, id),
        EvKind::Device(d) => on_device(fleet, ctx, now, d),
        EvKind::Probe(d) => on_probe(fleet, ctx, now, d),
        EvKind::Kick => {
            for d in 0..ctx.cfg.devices {
                if fleet.device_available(d) {
                    dispatch(fleet, ctx, now, d);
                }
            }
        }
    }
    fleet.events_settled += 1;
    Some(StepEvent {
        index: fleet.events_settled,
        now,
        kind,
        digest: fleet.digest(),
    })
}

/// Sweeps the drained fleet into its final [`ServeOutcome`].
fn finalize(mut fleet: Fleet, ctx: &Ctx<'_>) -> ServeOutcome {
    // Defensive totality: a fleet collapse resolves everything at the
    // instant of collapse, so nothing should still be pending — but a
    // typed terminal status is a contract, so sweep rather than trust.
    let devices = ctx.cfg.devices;
    for i in 0..fleet.outcome.records.len() {
        if fleet.outcome.records[i].status == Terminal::Pending {
            fleet.outcome.chaos.shed += 1;
            let rec = &mut fleet.outcome.records[i];
            rec.status = Terminal::Rejected(Rejection::Shed {
                healthy: 0,
                devices,
            });
            rec.rejection = Some(Rejection::Shed {
                healthy: 0,
                devices,
            });
        }
    }

    fleet.outcome.cache_hits = ctx.cache.hits();
    fleet.outcome.cache_misses = ctx.cache.misses();
    fleet.outcome
}

fn on_arrive(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, id: u64) {
    let idx = usize::try_from(id).expect("id fits");
    let priority = fleet.outcome.records[idx].priority;
    if let Some(ch) = ctx.cfg.chaos {
        // A dead fleet can serve nothing: shed terminally instead of
        // retrying forever.
        if fleet.alive_count() == 0 {
            fleet.outcome.chaos.shed += 1;
            resolve(
                fleet,
                ctx,
                now,
                id,
                Terminal::Rejected(Rejection::Shed {
                    healthy: 0,
                    devices: ctx.cfg.devices,
                }),
            );
            return;
        }
        // Load shedding: below the floor, batch-priority work is
        // sacrificed so surviving capacity serves interactive work.
        let healthy = fleet.healthy_count();
        if ch.shed_floor_pct > 0
            && priority > 0
            && healthy * 100 < (ch.shed_floor_pct as usize) * ctx.cfg.devices
        {
            fleet.outcome.chaos.shed += 1;
            resolve(
                fleet,
                ctx,
                now,
                id,
                Terminal::Rejected(Rejection::Shed {
                    healthy,
                    devices: ctx.cfg.devices,
                }),
            );
            return;
        }
    }
    let depth = fleet.queues[0].len() + fleet.queues[1].len();
    let rec = &mut fleet.outcome.records[idx];
    if depth >= ctx.cfg.queue_depth {
        fleet.outcome.rejections += 1;
        match ctx.workload.mode {
            LoadMode::Open { .. } => {
                let rejection = Rejection::QueueFull {
                    priority: rec.priority,
                    depth,
                };
                resolve(fleet, ctx, now, id, Terminal::Rejected(rejection));
            }
            LoadMode::Closed { .. } => {
                // Back off one quantum and retry; the arrival time
                // moves so latency measures from the admitting
                // attempt.
                rec.retries += 1;
                let at = now + ctx.cfg.quantum;
                rec.arrival = at;
                fleet.post(at, EvKind::Arrive(id));
            }
        }
        return;
    }
    let q = usize::from(rec.priority.min(1));
    let pending = Pending {
        id,
        class: rec.class,
        priority: rec.priority,
    };
    fleet.queues[q].push_back(pending);
    fleet.outcome.max_queue_depth[q] = fleet.outcome.max_queue_depth[q].max(fleet.queues[q].len());
    assert!(
        fleet.queues[0].len() + fleet.queues[1].len() <= ctx.cfg.queue_depth,
        "admission bound violated"
    );
    if let Some(d) = (0..ctx.cfg.devices).find(|&d| fleet.device_available(d)) {
        dispatch(fleet, ctx, now, d);
    }
}

fn on_device(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, d: usize) {
    let running = fleet.devices[d].take().expect("device event without a job");
    // The chaos crash draw happens at every slice end, before the
    // slice's outcome is believed: a crash loses the slice (even a
    // completed one — results are only read back from live devices).
    if let Some(ch) = ctx.cfg.chaos {
        if ch.crash_ppm > 0 && fleet.chaos[d].rng.below(PPM_SCALE) < u64::from(ch.crash_ppm) {
            fleet.outcome.chaos.crashes += 1;
            let permanent = ch.decommission_ppm > 0
                && fleet.chaos[d].rng.below(PPM_SCALE) < u64::from(ch.decommission_ppm);
            recover_job(fleet, ctx, now, running.meta, FailureKind::Crash);
            take_down(fleet, ctx, now, d, permanent);
            return;
        }
    }
    match running.end {
        SliceEnd::Done => {
            let Running { meta, sys, .. } = running;
            let blobs = meta.reader.read(sys.hmc());
            assert!(
                blobs.len() >= meta.reqs.len(),
                "tile produced fewer result blobs than batched requests"
            );
            let batch = meta.reqs.len();
            let status = if meta.recovered {
                Terminal::Recovered {
                    attempts: meta.attempt,
                    via_snapshot: meta.via_snapshot,
                }
            } else {
                Terminal::Completed
            };
            for (req, blob) in meta.reqs.iter().zip(&blobs) {
                let i = usize::try_from(*req).expect("id fits");
                let rec = &mut fleet.outcome.records[i];
                rec.completion = Some(now);
                rec.device = Some(d);
                rec.batch = batch;
                rec.result_hash = vip_snap::hash_bytes(blob);
                // `resolve` chains the closed-loop client, preserving
                // the issue order of the pre-failure-handling
                // scheduler: batched requests chain in batch order.
                resolve(fleet, ctx, now, *req, status);
            }
            dispatch(fleet, ctx, now, d);
        }
        SliceEnd::Paused => {
            let batch_job =
                running.meta.reqs.iter().all(|r| {
                    fleet.outcome.records[usize::try_from(*r).expect("id fits")].priority > 0
                });
            if batch_job && !fleet.queues[0].is_empty() {
                // Interactive work is waiting: park the batch job
                // bit-exactly and give the queue the device.
                fleet.outcome.preemptions += 1;
                let snapshot = running.sys.save_snapshot();
                fleet.parked.push_back(Parked {
                    meta: running.meta,
                    snapshot: Some(snapshot),
                    not_before: now,
                });
                dispatch(fleet, ctx, now, d);
            } else {
                let mut running = running;
                run_slice(fleet, ctx, &mut running, now, d);
                fleet.devices[d] = Some(running);
            }
        }
        SliceEnd::Failed(kind) => {
            match kind {
                FailureKind::Sim(vip_core::FailureClass::Hang) => {
                    fleet.outcome.chaos.hang_failures += 1;
                }
                FailureKind::Sim(_) => fleet.outcome.chaos.fault_failures += 1,
                FailureKind::Crash => unreachable!("crashes are drawn, not slice outcomes"),
            }
            recover_job(fleet, ctx, now, running.meta, kind);
            if ctx.cfg.chaos.is_some() {
                // A failure is evidence of a sick device: open the
                // breaker and probe before trusting it again.
                take_down(fleet, ctx, now, d, false);
            } else {
                dispatch(fleet, ctx, now, d);
            }
        }
    }
}

/// Re-queues a failed job for another attempt — restoring its last
/// periodic checkpoint where one exists, restaging from admission
/// otherwise — or resolves its requests terminally when the retry
/// budget, the deadline, or the fleet itself has run out.
fn recover_job(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, meta: JobMeta, kind: FailureKind) {
    let ch = ctx.cfg.chaos;
    let attempts = meta.attempt;
    let max_attempts = ch.map_or(1, |c| c.max_attempts.max(1));
    let deadline = ch.map_or(0, |c| c.deadline);
    if deadline > 0 {
        let all_expired = meta.reqs.iter().all(|req| {
            let rec = &fleet.outcome.records[usize::try_from(*req).expect("id fits")];
            now > rec.arrival.saturating_add(deadline)
        });
        if all_expired {
            for req in meta.reqs.clone() {
                let waited =
                    now - fleet.outcome.records[usize::try_from(req).expect("id fits")].arrival;
                fleet.outcome.chaos.timeouts += 1;
                resolve(
                    fleet,
                    ctx,
                    now,
                    req,
                    Terminal::Rejected(Rejection::Timeout { deadline, waited }),
                );
            }
            return;
        }
    }
    if attempts >= max_attempts || fleet.alive_count() == 0 {
        for req in meta.reqs {
            fleet.outcome.chaos.failed += 1;
            resolve(fleet, ctx, now, req, Terminal::Failed { kind, attempts });
        }
        return;
    }
    fleet.outcome.chaos.job_retries += 1;
    let mut meta = meta;
    meta.attempt += 1;
    meta.recovered = true;
    meta.last_failure = Some(kind);
    let snapshot = meta.ckpt.clone();
    meta.via_snapshot = snapshot.is_some();
    if snapshot.is_some() {
        fleet.outcome.chaos.recoveries_snapshot += 1;
    } else {
        fleet.outcome.chaos.recoveries_restart += 1;
    }
    let backoff = ch.map_or(0, |c| c.retry_backoff << (attempts - 1).min(6));
    let at = now + backoff;
    fleet.parked.push_back(Parked {
        meta,
        snapshot,
        not_before: at,
    });
    fleet.post(at, EvKind::Kick);
}

/// Quarantines device `d` behind a health probe, or decommissions it
/// permanently. A collapse (no device left alive) resolves every
/// queued and parked request on the spot.
fn take_down(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, d: usize, permanent: bool) {
    let ch = ctx.cfg.chaos.expect("take_down is a chaos-path action");
    if permanent {
        fleet.chaos[d].health = Health::Dead;
        fleet.outcome.chaos.decommissions += 1;
        if fleet.alive_count() == 0 {
            collapse(fleet, ctx, now);
        }
    } else {
        fleet.chaos[d].health = Health::Quarantined;
        fleet.outcome.chaos.quarantines += 1;
        let strikes = fleet.chaos[d].strikes;
        fleet.post(
            now + (ch.quarantine.max(1) << strikes.min(6)),
            EvKind::Probe(d),
        );
    }
}

/// A quarantined device's health probe: pass rejoins the fleet, fail
/// adds a strike and re-quarantines with doubled backoff until the
/// breaker opens for good.
fn on_probe(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, d: usize) {
    let ch = ctx.cfg.chaos.expect("probe events only exist under chaos");
    if fleet.chaos[d].health != Health::Quarantined {
        return;
    }
    fleet.outcome.chaos.probes += 1;
    if fleet.chaos[d].rng.below(PPM_SCALE) < u64::from(ch.probe_pass_ppm) {
        fleet.chaos[d].health = Health::Healthy;
        fleet.chaos[d].strikes = 0;
        dispatch(fleet, ctx, now, d);
    } else {
        fleet.outcome.chaos.probe_failures += 1;
        fleet.chaos[d].strikes += 1;
        if fleet.chaos[d].strikes >= ch.max_strikes.max(1) {
            fleet.chaos[d].health = Health::Dead;
            fleet.outcome.chaos.decommissions += 1;
            if fleet.alive_count() == 0 {
                collapse(fleet, ctx, now);
            }
        } else {
            let strikes = fleet.chaos[d].strikes;
            fleet.post(
                now + (ch.quarantine.max(1) << strikes.min(6)),
                EvKind::Probe(d),
            );
        }
    }
}

/// The whole fleet is dead: resolve every queued and parked request
/// terminally so the run still accounts for everything it admitted.
fn collapse(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64) {
    let devices = ctx.cfg.devices;
    let queued: Vec<u64> = fleet
        .queues
        .iter_mut()
        .flat_map(|q| q.drain(..))
        .map(|p| p.id)
        .collect();
    for id in queued {
        fleet.outcome.chaos.shed += 1;
        resolve(
            fleet,
            ctx,
            now,
            id,
            Terminal::Rejected(Rejection::Shed {
                healthy: 0,
                devices,
            }),
        );
    }
    let parked: Vec<Parked> = fleet.parked.drain(..).collect();
    for p in parked {
        let kind = p.meta.last_failure.unwrap_or(FailureKind::Crash);
        for req in p.meta.reqs {
            fleet.outcome.chaos.failed += 1;
            resolve(
                fleet,
                ctx,
                now,
                req,
                Terminal::Failed {
                    kind,
                    attempts: p.meta.attempt,
                },
            );
        }
    }
}

/// Picks the next job for idle, healthy device `d` and starts its
/// first slice. Preference order: fresh interactive batch, then a
/// parked job whose backoff expired, then fresh batch-class work.
fn dispatch(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, d: usize) {
    debug_assert!(fleet.devices[d].is_none());
    let mut running = if let Some(r) = start_batch(fleet, ctx, now, d, 0) {
        r
    } else if let Some(p) = fleet.take_parked(now) {
        resume_parked(fleet, ctx, d, p)
    } else if let Some(r) = start_batch(fleet, ctx, now, d, 1) {
        r
    } else {
        return;
    };
    run_slice(fleet, ctx, &mut running, now, d);
    fleet.devices[d] = Some(running);
}

/// Brings a parked job back onto device `d`: restores its snapshot
/// (counting a migration if the device changed), or restages it from
/// admission when it parked without one.
fn resume_parked(fleet: &mut Fleet, ctx: &Ctx<'_>, d: usize, p: Parked) -> Running {
    let mut meta = p.meta;
    let sys = if let Some(bytes) = &p.snapshot {
        let mut sys = Box::new(System::new(ctx.dev_cfg.clone()));
        sys.restore_snapshot(bytes)
            .expect("fleet devices share one fingerprint");
        if meta.home != d {
            fleet.outcome.migrations += 1;
            for req in &meta.reqs {
                let i = usize::try_from(*req).expect("id fits");
                fleet.outcome.records[i].migrations += 1;
            }
        }
        // The snapshot carries the *source* device's fault wiring;
        // the job now runs under the destination's.
        apply_device_faults(fleet, ctx, &mut sys, d);
        sys
    } else {
        let batch = meta.reqs.len();
        let mut staged = meta
            .class
            .stage(ctx.dev_cfg, batch, &ctx.cfg.schedule_dir, ctx.cache);
        staged.load_programs();
        fleet.outcome.dispatches += 1;
        if batch > 1 {
            fleet.outcome.batches += 1;
        }
        meta.reader = staged.reader;
        meta.limit = staged.limit;
        meta.slices_since_ckpt = 0;
        let mut sys = Box::new(staged.sys);
        apply_device_faults(fleet, ctx, &mut sys, d);
        sys
    };
    meta.home = d;
    fleet.note_dispatch(&meta.reqs.clone(), meta.attempt, d);
    Running {
        meta,
        sys,
        end: SliceEnd::Paused,
    }
}

/// Wires device `d`'s fault injector into `sys` (flaky devices get
/// their per-device config, healthy ones an explicit all-off). A
/// no-op when chaos is disabled, preserving the clean fleet's exact
/// behaviour.
fn apply_device_faults(fleet: &Fleet, ctx: &Ctx<'_>, sys: &mut System, d: usize) {
    if ctx.cfg.chaos.is_none() {
        return;
    }
    if fleet.chaos[d].flaky && !fleet.chaos[d].faults.is_inert() {
        sys.set_fault_config(&fleet.chaos[d].faults);
    } else {
        sys.set_fault_config(&FaultConfig::disabled());
    }
}

/// Pops queue `q`'s head plus every same-class follower (in arrival
/// order, up to the batch bound), stages the tile, and returns it
/// ready for its first slice — or `None` if the queue ran out
/// (including when every queued request had blown its deadline).
/// Batching is the only reordering the FIFO-fairness property
/// permits: it may lift same-key requests past other keys, but never
/// reorders requests of one key.
fn start_batch(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, d: usize, q: usize) -> Option<Running> {
    let deadline = ctx.cfg.chaos.map_or(0, |c| c.deadline);
    let expired = |rec: &RequestRecord| deadline > 0 && now > rec.arrival.saturating_add(deadline);
    let head = loop {
        let head = fleet.queues[q].pop_front()?;
        let idx = usize::try_from(head.id).expect("id fits");
        if expired(&fleet.outcome.records[idx]) {
            let waited = now - fleet.outcome.records[idx].arrival;
            fleet.outcome.chaos.timeouts += 1;
            resolve(
                fleet,
                ctx,
                now,
                head.id,
                Terminal::Rejected(Rejection::Timeout { deadline, waited }),
            );
            continue;
        }
        break head;
    };
    let limit = ctx.cfg.batch_max.min(head.class.batch_limit()).max(1);
    let mut reqs = vec![head.id];
    if limit > 1 {
        let mut i = 0;
        while i < fleet.queues[q].len() && reqs.len() < limit {
            if fleet.queues[q][i].class == head.class
                && fleet.queues[q][i].priority == head.priority
            {
                let p = fleet.queues[q]
                    .remove(i)
                    .expect("scanned index is in range");
                let idx = usize::try_from(p.id).expect("id fits");
                if expired(&fleet.outcome.records[idx]) {
                    let waited = now - fleet.outcome.records[idx].arrival;
                    fleet.outcome.chaos.timeouts += 1;
                    resolve(
                        fleet,
                        ctx,
                        now,
                        p.id,
                        Terminal::Rejected(Rejection::Timeout { deadline, waited }),
                    );
                } else {
                    reqs.push(p.id);
                }
            } else {
                i += 1;
            }
        }
    }
    let batch = reqs.len();
    fleet.outcome.dispatches += 1;
    if batch > 1 {
        fleet.outcome.batches += 1;
    }
    let mut staged = head
        .class
        .stage(ctx.dev_cfg, batch, &ctx.cfg.schedule_dir, ctx.cache);
    staged.load_programs();
    for req in &reqs {
        let i = usize::try_from(*req).expect("id fits");
        let rec = &mut fleet.outcome.records[i];
        rec.dispatch = Some(now);
        rec.batch = batch;
    }
    let mut sys = Box::new(staged.sys);
    apply_device_faults(fleet, ctx, &mut sys, d);
    fleet.note_dispatch(&reqs, 1, d);
    Some(Running {
        meta: JobMeta {
            reqs,
            class: head.class,
            limit: staged.limit,
            reader: staged.reader,
            home: d,
            attempt: 1,
            recovered: false,
            via_snapshot: false,
            last_failure: None,
            ckpt: None,
            slices_since_ckpt: 0,
        },
        sys,
        end: SliceEnd::Paused,
    })
}

/// Simulates one quantum on the job's own system (eagerly) and posts
/// the slice-end event at the fleet time it lands. A chaos hang draw
/// caps the engine's budget at the slice boundary, so a wedged slice
/// surfaces the engine's own typed [`SimError::Hang`] with a genuine
/// report of the live machine; any other engine error becomes a typed
/// slice failure for the recovery path.
fn run_slice(fleet: &mut Fleet, ctx: &Ctx<'_>, running: &mut Running, now: u64, d: usize) {
    let start = running.sys.now();
    let pause = start
        .saturating_add(ctx.cfg.quantum)
        .min(running.meta.limit);
    let mut limit = running.meta.limit;
    let mut induced = false;
    if let Some(ch) = ctx.cfg.chaos {
        if ch.hang_ppm > 0 && fleet.chaos[d].rng.below(PPM_SCALE) < u64::from(ch.hang_ppm) {
            limit = pause;
            induced = true;
        }
    }
    match ctx.cfg.engine.advance(&mut running.sys, pause, limit) {
        Ok(res) => {
            running.end = match res {
                RunOutcome::Quiesced(_) => SliceEnd::Done,
                RunOutcome::Paused(_) => SliceEnd::Paused,
            };
            if running.end == SliceEnd::Paused {
                if let Some(ch) = ctx.cfg.chaos {
                    if ch.checkpoint_every > 0 {
                        running.meta.slices_since_ckpt += 1;
                        if running.meta.slices_since_ckpt >= ch.checkpoint_every {
                            running.meta.ckpt = Some(running.sys.save_snapshot());
                            running.meta.slices_since_ckpt = 0;
                        }
                    }
                }
            }
        }
        Err(e) => {
            if induced && matches!(e, SimError::Hang(_)) {
                fleet.outcome.chaos.induced_hangs += 1;
            }
            running.end = SliceEnd::Failed(FailureKind::Sim(e.class()));
        }
    }
    let end = running.sys.now();
    let delta = end - start;
    fleet.outcome.device_busy[d] += delta;
    fleet.post(now + delta, EvKind::Device(d));
}

// ---------------------------------------------------------------------------
// Fleet checkpointing: the codec for the whole scheduler state.
//
// The `Snapshot` canonicality contract holds throughout: unordered
// containers (the event heap, the client map) serialize sorted, so the
// same logical fleet always checkpoints to the same bytes. Derived
// state is not persisted — each job's `ResultReader` is rebuilt from
// its tile class, and each device `System` round-trips through its own
// bit-exact snapshot.
// ---------------------------------------------------------------------------

impl Snapshot for Pending {
    fn save(&self, w: &mut Writer) {
        w.u64(self.id);
        self.class.save(w);
        w.u8(self.priority);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Pending {
            id: r.u64()?,
            class: TileClass::restore(r)?,
            priority: r.u8()?,
        })
    }
}

impl Snapshot for SliceEnd {
    fn save(&self, w: &mut Writer) {
        match self {
            SliceEnd::Done => w.u8(0),
            SliceEnd::Paused => w.u8(1),
            SliceEnd::Failed(kind) => {
                w.u8(2);
                kind.save(w);
            }
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => SliceEnd::Done,
            1 => SliceEnd::Paused,
            2 => SliceEnd::Failed(FailureKind::restore(r)?),
            _ => return Err(SnapError::Corrupt("slice end tag")),
        })
    }
}

impl Snapshot for Health {
    fn save(&self, w: &mut Writer) {
        w.u8(match self {
            Health::Healthy => 0,
            Health::Quarantined => 1,
            Health::Dead => 2,
        });
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Health::Healthy,
            1 => Health::Quarantined,
            2 => Health::Dead,
            _ => return Err(SnapError::Corrupt("health tag")),
        })
    }
}

impl Snapshot for DeviceChaos {
    fn save(&self, w: &mut Writer) {
        w.u64(self.rng.state());
        w.bool(self.flaky);
        self.faults.save(w);
        self.health.save(w);
        w.u32(self.strikes);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(DeviceChaos {
            rng: SplitMix64::new(r.u64()?),
            flaky: r.bool()?,
            faults: FaultConfig::restore(r)?,
            health: Health::restore(r)?,
            strikes: r.u32()?,
        })
    }
}

fn save_job(meta: &JobMeta, w: &mut Writer) {
    meta.reqs.save(w);
    meta.class.save(w);
    w.u64(meta.limit);
    w.usize(meta.home);
    w.u32(meta.attempt);
    w.bool(meta.recovered);
    w.bool(meta.via_snapshot);
    meta.last_failure.save(w);
    match &meta.ckpt {
        None => w.bool(false),
        Some(b) => {
            w.bool(true);
            w.bytes(b);
        }
    }
    w.u32(meta.slices_since_ckpt);
}

/// Decodes a [`JobMeta`], rebuilding its result reader (a pure
/// function of the tile class, batch size, and schedule store).
fn restore_job(r: &mut Reader<'_>, ctx: &Ctx<'_>) -> Result<JobMeta, SnapError> {
    let reqs: Vec<u64> = Vec::restore(r)?;
    if reqs.is_empty() {
        return Err(SnapError::Corrupt("job without requests"));
    }
    let class = TileClass::restore(r)?;
    let limit = r.u64()?;
    let home = r.usize()?;
    let attempt = r.u32()?;
    let recovered = r.bool()?;
    let via_snapshot = r.bool()?;
    let last_failure = Option::restore(r)?;
    let ckpt = if r.bool()? {
        Some(r.bytes()?.to_vec())
    } else {
        None
    };
    let slices_since_ckpt = r.u32()?;
    let reader = class.reader_for(
        reqs.len(),
        &ctx.cfg.schedule_dir,
        ctx.dev_cfg.snapshot_fingerprint(),
    );
    Ok(JobMeta {
        reqs,
        class,
        limit,
        reader,
        home,
        attempt,
        recovered,
        via_snapshot,
        last_failure,
        ckpt,
        slices_since_ckpt,
    })
}

fn save_parked(p: &Parked, w: &mut Writer) {
    save_job(&p.meta, w);
    match &p.snapshot {
        None => w.bool(false),
        Some(b) => {
            w.bool(true);
            w.bytes(b);
        }
    }
    w.u64(p.not_before);
}

fn restore_parked(r: &mut Reader<'_>, ctx: &Ctx<'_>) -> Result<Parked, SnapError> {
    let meta = restore_job(r, ctx)?;
    let snapshot = if r.bool()? {
        Some(r.bytes()?.to_vec())
    } else {
        None
    };
    Ok(Parked {
        meta,
        snapshot,
        not_before: r.u64()?,
    })
}

fn save_running(running: &Running, w: &mut Writer) {
    save_job(&running.meta, w);
    w.bytes(&running.sys.save_snapshot());
    running.end.save(w);
}

fn restore_running(r: &mut Reader<'_>, ctx: &Ctx<'_>) -> Result<Running, SnapError> {
    let meta = restore_job(r, ctx)?;
    let snap = r.bytes()?;
    let mut sys = Box::new(System::new(ctx.dev_cfg.clone()));
    sys.restore_snapshot(snap)?;
    let end = SliceEnd::restore(r)?;
    Ok(Running { meta, sys, end })
}

/// Serializes the whole fleet — scheduler bookkeeping, every busy
/// device's bit-exact snapshot, chaos RNG cursors, the partial
/// outcome, and the program cache's key set — into one checkpoint
/// blob keyed by the run fingerprint.
fn save_fleet(fleet: &Fleet, ctx: &Ctx<'_>, fingerprint: u64) -> Vec<u8> {
    let mut w = Writer::new();
    write_header(&mut w, fingerprint);
    let mut events: Vec<(u64, u64, EvKind)> = fleet.heap.iter().map(|Reverse(e)| *e).collect();
    events.sort_unstable();
    w.usize(events.len());
    for (at, seq, kind) in events {
        w.u64(at);
        w.u64(seq);
        let (tag, arg) = kind.encode();
        w.u8(tag);
        w.u64(arg);
    }
    w.u64(fleet.seq);
    w.u64(fleet.issued);
    w.u64(fleet.events_settled);
    let mut clients: Vec<(u64, usize)> = fleet.client_of.iter().map(|(&k, &v)| (k, v)).collect();
    clients.sort_unstable();
    clients.save(&mut w);
    let cursors: Vec<u64> = fleet.think_rngs.iter().map(SplitMix64::state).collect();
    cursors.save(&mut w);
    fleet.queues[0].save(&mut w);
    fleet.queues[1].save(&mut w);
    w.usize(fleet.parked.len());
    for p in &fleet.parked {
        save_parked(p, &mut w);
    }
    w.usize(fleet.devices.len());
    for dev in &fleet.devices {
        match dev {
            None => w.bool(false),
            Some(running) => {
                w.bool(true);
                save_running(running, &mut w);
            }
        }
    }
    w.usize(fleet.chaos.len());
    for c in &fleet.chaos {
        c.save(&mut w);
    }
    fleet.outcome.save(&mut w);
    ctx.cache.keys().save(&mut w);
    w.u64(ctx.cache.hits());
    w.u64(ctx.cache.misses());
    w.into_bytes()
}

/// Guards a decoded element count against the bytes actually left —
/// every element the fleet codec reads occupies at least one byte, so
/// a larger count can only be a corrupt length prefix.
fn fleet_len(r: &Reader<'_>, len: usize) -> Result<usize, SnapError> {
    if len > r.remaining() {
        return Err(SnapError::Corrupt("fleet element count"));
    }
    Ok(len)
}

/// Decodes a [`save_fleet`] blob back into a live fleet, priming the
/// program cache with the checkpointed key set and counters. Every
/// malformed input is a typed [`SnapError`] — never a panic.
fn restore_fleet(bytes: &[u8], ctx: &Ctx<'_>, fingerprint: u64) -> Result<Fleet, SnapError> {
    let mut r = Reader::new(bytes);
    read_header(&mut r, fingerprint)?;
    let n = r.usize()?;
    let n = fleet_len(&r, n)?;
    let mut heap = EventHeap::with_capacity(n);
    for _ in 0..n {
        let at = r.u64()?;
        let seq = r.u64()?;
        let tag = r.u8()?;
        let arg = r.u64()?;
        heap.push(Reverse((at, seq, EvKind::decode(tag, arg)?)));
    }
    let seq = r.u64()?;
    let issued = r.u64()?;
    let events_settled = r.u64()?;
    let clients: Vec<(u64, usize)> = Vec::restore(&mut r)?;
    let cursors: Vec<u64> = Vec::restore(&mut r)?;
    let queues = [VecDeque::restore(&mut r)?, VecDeque::restore(&mut r)?];
    let n = r.usize()?;
    let n = fleet_len(&r, n)?;
    let mut parked = VecDeque::with_capacity(n);
    for _ in 0..n {
        parked.push_back(restore_parked(&mut r, ctx)?);
    }
    let n = r.usize()?;
    if n != ctx.cfg.devices {
        return Err(SnapError::Corrupt("device count mismatch"));
    }
    let mut devices = Vec::with_capacity(n);
    for _ in 0..n {
        devices.push(if r.bool()? {
            Some(restore_running(&mut r, ctx)?)
        } else {
            None
        });
    }
    let n = r.usize()?;
    if n != if ctx.cfg.chaos.is_some() {
        ctx.cfg.devices
    } else {
        0
    } {
        return Err(SnapError::Corrupt("chaos state count mismatch"));
    }
    let mut chaos = Vec::with_capacity(n);
    for _ in 0..n {
        chaos.push(DeviceChaos::restore(&mut r)?);
    }
    let outcome = ServeOutcome::restore(&mut r)?;
    let cache_keys: Vec<CacheKey> = Vec::restore(&mut r)?;
    let hits = r.u64()?;
    let misses = r.u64()?;
    r.finish()?;
    ctx.cache.prime(cache_keys, hits, misses);
    Ok(Fleet {
        heap,
        seq,
        issued,
        events_settled,
        client_of: clients.into_iter().collect(),
        think_rngs: cursors.into_iter().map(SplitMix64::new).collect(),
        queues,
        parked,
        devices,
        chaos,
        outcome,
    })
}

// ---------------------------------------------------------------------------
// The durable driver: journaled execution with verified replay.
// ---------------------------------------------------------------------------

fn outcome_bytes(outcome: &ServeOutcome, fingerprint: u64) -> Vec<u8> {
    let mut w = Writer::new();
    write_header(&mut w, fingerprint);
    outcome.save(&mut w);
    w.into_bytes()
}

fn decode_outcome(bytes: &[u8], fingerprint: u64) -> Result<ServeOutcome, SnapError> {
    let mut r = Reader::new(bytes);
    read_header(&mut r, fingerprint)?;
    let outcome = ServeOutcome::restore(&mut r)?;
    r.finish()?;
    Ok(outcome)
}

/// Runs `workload` durably over `store`: every settled scheduler event
/// appends one frame to the write-ahead journal, a whole-fleet
/// checkpoint lands every `checkpoint_every` events (`0` = journal
/// only), and the finished outcome is published as the point's
/// done-record. When the store already holds state from an interrupted
/// run, the run restores the latest checkpoint and *verifies* itself
/// against the journal tail while replaying it — so the returned
/// outcome is byte-identical to an uninterrupted run's.
///
/// Corrupt or divergent persisted state is never fatal (and never a
/// panic): the point's files are wiped and the run recomputed from
/// scratch. A fresh attempt can only fail with [`DurableError::Io`].
///
/// # Errors
///
/// [`DurableError::Io`] when the filesystem refuses a read or write.
pub fn serve_durable(
    cfg: &ServeConfig,
    workload: &Workload,
    store: &mut PointStore,
    checkpoint_every: u64,
) -> Result<ServeOutcome, DurableError> {
    match try_serve_durable(cfg, workload, store, checkpoint_every, None) {
        Err(DurableError::Corrupt { .. } | DurableError::Diverged { .. }) => {
            store.reset()?;
            let outcome = try_serve_durable(cfg, workload, store, checkpoint_every, None)?;
            Ok(outcome.expect("uninterrupted run always finishes"))
        }
        done => Ok(done?.expect("uninterrupted run always finishes")),
    }
}

/// [`serve_durable`], abandoned after `stop_after` settled events —
/// the in-process stand-in for a host crash between journal appends,
/// used by the durability tests to exercise resume at exact event
/// boundaries. The store is left exactly as a kill at that point
/// would leave it (journal synced, no done-record).
///
/// # Errors
///
/// As [`serve_durable`].
pub fn serve_durable_interrupted(
    cfg: &ServeConfig,
    workload: &Workload,
    store: &mut PointStore,
    checkpoint_every: u64,
    stop_after: u64,
) -> Result<(), DurableError> {
    match try_serve_durable(cfg, workload, store, checkpoint_every, Some(stop_after)) {
        Err(DurableError::Corrupt { .. } | DurableError::Diverged { .. }) => {
            store.reset()?;
            try_serve_durable(cfg, workload, store, checkpoint_every, Some(stop_after))?;
            Ok(())
        }
        done => {
            done?;
            Ok(())
        }
    }
}

/// One durable attempt. `Ok(None)` means `stop_after` cut the run
/// short (test-only); `Ok(Some(..))` is the finished outcome.
fn try_serve_durable(
    cfg: &ServeConfig,
    workload: &Workload,
    store: &mut PointStore,
    checkpoint_every: u64,
    stop_after: Option<u64>,
) -> Result<Option<ServeOutcome>, DurableError> {
    let fingerprint = store.fingerprint();
    let (ckpt, journal) = match store.load()? {
        LoadedPoint::Done(bytes) => {
            return decode_outcome(&bytes, fingerprint).map(Some).map_err(|e| {
                DurableError::Corrupt {
                    path: store.done_path(),
                    source: e,
                }
            });
        }
        LoadedPoint::Resume { ckpt, journal } => (ckpt, journal),
    };

    let dev_cfg = SystemConfig::single_vault(cfg.mem.clone());
    let cache = ProgramCache::new();
    let ctx = Ctx {
        cfg,
        dev_cfg: &dev_cfg,
        cache: &cache,
        workload,
    };
    let mut fleet = match &ckpt {
        Some(bytes) => {
            restore_fleet(bytes, &ctx, fingerprint).map_err(|e| DurableError::Corrupt {
                path: store.latest_ckpt_path(),
                source: e,
            })?
        }
        None => init_fleet(&ctx),
    };
    // Journal frames settled after the checkpoint, awaiting
    // verification against what replay actually produces.
    let mut verify: VecDeque<Vec<u8>> = journal.into();

    while let Some(ev) = step(&mut fleet, &ctx) {
        let payload = event_payload(&ev);
        match verify.pop_front() {
            Some(expected) => {
                if expected != payload {
                    return Err(DurableError::Diverged { event: ev.index });
                }
            }
            None => store.append(&payload)?,
        }
        // The cadence rule: checkpoint on the boundary, but never while
        // journal frames are still pending verification — during replay
        // the verify queue drains exactly at the boundary only when the
        // original run died *inside* its checkpoint write, which is
        // precisely the case that needs the checkpoint retaken.
        if checkpoint_every > 0 && fleet.events_settled % checkpoint_every == 0 && verify.is_empty()
        {
            store.checkpoint(&save_fleet(&fleet, &ctx, fingerprint))?;
        }
        if stop_after.is_some_and(|n| fleet.events_settled >= n) {
            return Ok(None);
        }
    }
    if !verify.is_empty() {
        // The journal records events this replay never produced.
        return Err(DurableError::Diverged {
            event: fleet.events_settled + 1,
        });
    }
    let outcome = finalize(fleet, &ctx);
    store.finish(&outcome_bytes(&outcome, fingerprint))?;
    Ok(Some(outcome))
}

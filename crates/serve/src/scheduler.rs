//! The discrete-event fleet scheduler.
//!
//! One fleet-wide virtual clock, one event heap. Devices are full
//! simulated `System`s; the scheduler advances the one holding a job
//! in bounded quanta (eagerly simulating each slice when it is
//! dispatched, then scheduling the completion event at the fleet time
//! the slice ends). Everything is ordered by `(cycle, sequence)` with
//! a monotone sequence counter, so execution is a pure function of
//! the workload seed — no host threads, no wall clock, no hashmap
//! iteration order anywhere near a decision.
//!
//! Admission: two FIFO queues (priority 0 = interactive, 1 = batch)
//! with a shared depth bound; an arrival that would exceed the bound
//! gets a typed [`Rejection`] (terminal in open loop, retry-after-
//! backoff in closed loop). Dispatch prefers interactive work, batches
//! same-key compatible requests up to the class's batch limit, and
//! resumes parked jobs before starting new batch-class work.
//!
//! Preemption: a batch-priority job that pauses at a slice boundary
//! while interactive work is queued is snapshotted (the bit-exact
//! checkpoint of [`vip_core::System::save_snapshot`]) and parked; the
//! snapshot restores onto whichever device frees up first — migration
//! across devices is safe because every device in the fleet shares
//! one structural configuration fingerprint.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::path::PathBuf;

use vip_core::{RunOutcome, System, SystemConfig};
use vip_mem::MemConfig;
use vip_rng::SplitMix64;

use crate::cache::ProgramCache;
use crate::device::Engine;
use crate::tiles::{ResultReader, TileClass};
use crate::workload::{LoadMode, Workload};

/// Fleet and policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulated devices in the pool.
    pub devices: usize,
    /// Shared admission bound: queued requests across both priority
    /// classes may not exceed this.
    pub queue_depth: usize,
    /// Device slice length in cycles; preemption and completion are
    /// only observed at slice boundaries.
    pub quantum: u64,
    /// Upper bound on requests batched into one tile (further capped
    /// by each class's [`TileClass::batch_limit`]).
    pub batch_max: usize,
    /// Stepping engine for every device.
    pub engine: Engine,
    /// Per-device memory configuration (devices are single-vault).
    pub mem: MemConfig,
    /// Where tuned schedule artifacts live.
    pub schedule_dir: PathBuf,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            devices: 4,
            queue_depth: 64,
            quantum: 100_000,
            batch_max: 8,
            engine: Engine::Fast,
            mem: MemConfig::baseline(),
            schedule_dir: vip_kernels::schedule_store::dir(),
        }
    }
}

/// Why an arrival was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The shared queue bound was already met.
    QueueFull {
        /// The rejected request's priority class.
        priority: u8,
        /// Queue occupancy at the instant of rejection.
        depth: usize,
    },
}

/// The full life of one request, as the report records it.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Request id (issue order).
    pub id: u64,
    /// Issuing client (closed loop only).
    pub client: Option<usize>,
    /// What was asked for.
    pub class: TileClass,
    /// The class's schedule-store shape key.
    pub key: String,
    /// Priority class (0 interactive, 1 batch).
    pub priority: u8,
    /// Fleet cycle the request (finally) arrived.
    pub arrival: u64,
    /// Fleet cycle its tile started running, if it ever did.
    pub dispatch: Option<u64>,
    /// Fleet cycle its results were read back.
    pub completion: Option<u64>,
    /// Device the tile finished on.
    pub device: Option<usize>,
    /// Requests sharing its tile (1 = unbatched).
    pub batch: usize,
    /// Times its job moved to a different device via snapshot.
    pub migrations: u32,
    /// Closed-loop admission retries before it got in.
    pub retries: u32,
    /// Terminal rejection (open loop only).
    pub rejection: Option<Rejection>,
    /// FNV-1a hash of the request's result blob.
    pub result_hash: u64,
}

impl RequestRecord {
    /// Queueing + service latency in cycles, if the request completed.
    #[must_use]
    pub fn latency(&self) -> Option<u64> {
        self.completion.map(|c| c - self.arrival)
    }
}

/// Everything one serving run produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Per-request records, in id order, one per issued request.
    pub records: Vec<RequestRecord>,
    /// Fleet cycle the last event settled.
    pub makespan: u64,
    /// Slice-boundary preemptions taken.
    pub preemptions: u64,
    /// Parked jobs resumed on a device other than the one they left.
    pub migrations: u64,
    /// Tiles dispatched serving more than one request.
    pub batches: u64,
    /// Total tiles dispatched.
    pub dispatches: u64,
    /// High-water queue occupancy per priority class.
    pub max_queue_depth: [usize; 2],
    /// Arrivals refused admission (terminal or retried).
    pub rejections: u64,
    /// Busy cycles per device.
    pub device_busy: Vec<u64>,
    /// Prepared-program cache hits over the run.
    pub cache_hits: u64,
    /// Prepared-program cache misses (program builds) over the run.
    pub cache_misses: u64,
}

/// A queued request awaiting dispatch.
#[derive(Debug, Clone)]
struct Pending {
    id: u64,
    class: TileClass,
    priority: u8,
}

/// The scheduler's view of one in-flight tile.
#[derive(Debug)]
struct JobMeta {
    reqs: Vec<u64>,
    limit: u64,
    reader: ResultReader,
    home: usize,
}

/// A job parked mid-flight as a snapshot.
#[derive(Debug)]
struct Parked {
    meta: JobMeta,
    snapshot: Vec<u8>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SliceEnd {
    Done,
    Paused,
}

struct Running {
    meta: JobMeta,
    sys: Box<System>,
    end: SliceEnd,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvKind {
    /// Request with this id arrives (or retries admission).
    Arrive(u64),
    /// The device's current slice ends.
    Device(usize),
}

type EventHeap = BinaryHeap<Reverse<(u64, u64, EvKind)>>;

/// Shared mutable bookkeeping the event handlers thread through.
struct Fleet {
    heap: EventHeap,
    seq: u64,
    issued: u64,
    client_of: HashMap<u64, usize>,
    think_rngs: Vec<SplitMix64>,
    queues: [VecDeque<Pending>; 2],
    parked: VecDeque<Parked>,
    devices: Vec<Option<Running>>,
    outcome: ServeOutcome,
}

impl Fleet {
    fn post(&mut self, at: u64, kind: EvKind) {
        self.heap.push(Reverse((at, self.seq, kind)));
        self.seq += 1;
    }

    /// Issues request number `issued` at fleet time `at` and returns
    /// its id (the record is appended; the arrival event is not).
    fn issue(&mut self, workload: &Workload, at: u64, client: Option<usize>) -> u64 {
        let id = self.issued;
        self.issued += 1;
        let entry = workload.draw(id);
        self.outcome.records.push(RequestRecord {
            id,
            client,
            class: entry.class,
            key: entry.class.key(),
            priority: entry.priority,
            arrival: at,
            dispatch: None,
            completion: None,
            device: None,
            batch: 1,
            migrations: 0,
            retries: 0,
            rejection: None,
            result_hash: 0,
        });
        if let Some(c) = client {
            self.client_of.insert(id, c);
        }
        id
    }
}

/// Runs `workload` over the fleet described by `cfg` and returns the
/// full outcome. Deterministic: same config + same workload ⇒
/// identical outcome, field for field.
///
/// # Panics
///
/// Panics if the fleet is empty, the queue bound is zero, or a device
/// simulation faults (a hang or trap inside a staged tile is a kernel
/// bug, not a serving-policy outcome).
#[must_use]
pub fn serve(cfg: &ServeConfig, workload: &Workload) -> ServeOutcome {
    assert!(cfg.devices > 0, "fleet needs at least one device");
    assert!(cfg.queue_depth > 0, "queue bound must admit something");
    assert!(cfg.quantum > 0, "a zero quantum cannot make progress");
    let dev_cfg = SystemConfig::single_vault(cfg.mem.clone());
    let cache = ProgramCache::new();

    let mut fleet = Fleet {
        heap: BinaryHeap::new(),
        seq: 0,
        issued: 0,
        client_of: HashMap::new(),
        think_rngs: Vec::new(),
        queues: [VecDeque::new(), VecDeque::new()],
        parked: VecDeque::new(),
        devices: (0..cfg.devices).map(|_| None).collect(),
        outcome: ServeOutcome {
            records: Vec::with_capacity(workload.requests),
            makespan: 0,
            preemptions: 0,
            migrations: 0,
            batches: 0,
            dispatches: 0,
            max_queue_depth: [0, 0],
            rejections: 0,
            device_busy: vec![0; cfg.devices],
            cache_hits: 0,
            cache_misses: 0,
        },
    };

    match workload.mode {
        LoadMode::Open { mean_gap } => {
            let mut rng = workload.arrival_rng();
            let mut t = 0u64;
            for _ in 0..workload.requests {
                t += rng.below(2 * mean_gap + 1);
                let id = fleet.issue(workload, t, None);
                fleet.post(t, EvKind::Arrive(id));
            }
        }
        LoadMode::Closed { clients, think: _ } => {
            assert!(clients > 0, "closed loop needs at least one client");
            for c in 0..clients {
                fleet.think_rngs.push(workload.think_rng(c));
                if (fleet.issued as usize) < workload.requests {
                    let id = fleet.issue(workload, 0, Some(c));
                    fleet.post(0, EvKind::Arrive(id));
                }
            }
        }
    }

    while let Some(Reverse((now, _, kind))) = fleet.heap.pop() {
        fleet.outcome.makespan = fleet.outcome.makespan.max(now);
        match kind {
            EvKind::Arrive(id) => on_arrive(&mut fleet, cfg, &dev_cfg, &cache, workload, now, id),
            EvKind::Device(d) => on_device(&mut fleet, cfg, &dev_cfg, &cache, workload, now, d),
        }
    }

    fleet.outcome.cache_hits = cache.hits();
    fleet.outcome.cache_misses = cache.misses();
    fleet.outcome
}

fn on_arrive(
    fleet: &mut Fleet,
    cfg: &ServeConfig,
    dev_cfg: &SystemConfig,
    cache: &ProgramCache,
    workload: &Workload,
    now: u64,
    id: u64,
) {
    let depth = fleet.queues[0].len() + fleet.queues[1].len();
    let rec = &mut fleet.outcome.records[usize::try_from(id).expect("id fits")];
    if depth >= cfg.queue_depth {
        fleet.outcome.rejections += 1;
        match workload.mode {
            LoadMode::Open { .. } => {
                rec.rejection = Some(Rejection::QueueFull {
                    priority: rec.priority,
                    depth,
                });
            }
            LoadMode::Closed { .. } => {
                // Back off one quantum and retry; the arrival time
                // moves so latency measures from the admitting
                // attempt.
                rec.retries += 1;
                let at = now + cfg.quantum;
                rec.arrival = at;
                fleet.post(at, EvKind::Arrive(id));
            }
        }
        return;
    }
    let q = usize::from(rec.priority.min(1));
    let pending = Pending {
        id,
        class: rec.class,
        priority: rec.priority,
    };
    fleet.queues[q].push_back(pending);
    fleet.outcome.max_queue_depth[q] = fleet.outcome.max_queue_depth[q].max(fleet.queues[q].len());
    assert!(
        fleet.queues[0].len() + fleet.queues[1].len() <= cfg.queue_depth,
        "admission bound violated"
    );
    if let Some(d) = fleet.devices.iter().position(Option::is_none) {
        dispatch(fleet, cfg, dev_cfg, cache, now, d);
    }
}

fn on_device(
    fleet: &mut Fleet,
    cfg: &ServeConfig,
    dev_cfg: &SystemConfig,
    cache: &ProgramCache,
    workload: &Workload,
    now: u64,
    d: usize,
) {
    let running = fleet.devices[d].take().expect("device event without a job");
    match running.end {
        SliceEnd::Done => {
            let Running { meta, sys, .. } = running;
            let blobs = meta.reader.read(sys.hmc());
            assert!(
                blobs.len() >= meta.reqs.len(),
                "tile produced fewer result blobs than batched requests"
            );
            let batch = meta.reqs.len();
            for (req, blob) in meta.reqs.iter().zip(&blobs) {
                let i = usize::try_from(*req).expect("id fits");
                let rec = &mut fleet.outcome.records[i];
                rec.completion = Some(now);
                rec.device = Some(d);
                rec.batch = batch;
                rec.result_hash = vip_snap::hash_bytes(blob);
            }
            // Closed loop: each satisfied client thinks, then issues
            // its next request.
            if let LoadMode::Closed { think, .. } = workload.mode {
                for i in 0..batch {
                    let req = meta.reqs[i];
                    if (fleet.issued as usize) >= workload.requests {
                        break;
                    }
                    let c = fleet.client_of[&req];
                    let gap = fleet.think_rngs[c].below(2 * think + 1);
                    let at = now + gap;
                    let id = fleet.issue(workload, at, Some(c));
                    fleet.post(at, EvKind::Arrive(id));
                }
            }
            dispatch(fleet, cfg, dev_cfg, cache, now, d);
        }
        SliceEnd::Paused => {
            let batch_job =
                running.meta.reqs.iter().all(|r| {
                    fleet.outcome.records[usize::try_from(*r).expect("id fits")].priority > 0
                });
            if batch_job && !fleet.queues[0].is_empty() {
                // Interactive work is waiting: park the batch job
                // bit-exactly and give the queue the device.
                fleet.outcome.preemptions += 1;
                let snapshot = running.sys.save_snapshot();
                fleet.parked.push_back(Parked {
                    meta: running.meta,
                    snapshot,
                });
                dispatch(fleet, cfg, dev_cfg, cache, now, d);
            } else {
                let mut running = running;
                run_slice(fleet, cfg, &mut running, now, d);
                fleet.devices[d] = Some(running);
            }
        }
    }
}

/// Picks the next job for idle device `d` and starts its first slice.
/// Preference order: fresh interactive batch, then a parked job, then
/// fresh batch-class work.
fn dispatch(
    fleet: &mut Fleet,
    cfg: &ServeConfig,
    dev_cfg: &SystemConfig,
    cache: &ProgramCache,
    now: u64,
    d: usize,
) {
    debug_assert!(fleet.devices[d].is_none());
    let mut running = if !fleet.queues[0].is_empty() {
        start_batch(fleet, cfg, dev_cfg, cache, now, d, 0)
    } else if let Some(p) = fleet.parked.pop_front() {
        let mut sys = Box::new(System::new(dev_cfg.clone()));
        sys.restore_snapshot(&p.snapshot)
            .expect("fleet devices share one fingerprint");
        let mut meta = p.meta;
        if meta.home != d {
            fleet.outcome.migrations += 1;
            for req in &meta.reqs {
                let i = usize::try_from(*req).expect("id fits");
                fleet.outcome.records[i].migrations += 1;
            }
            meta.home = d;
        }
        Running {
            meta,
            sys,
            end: SliceEnd::Paused,
        }
    } else if !fleet.queues[1].is_empty() {
        start_batch(fleet, cfg, dev_cfg, cache, now, d, 1)
    } else {
        return;
    };

    run_slice(fleet, cfg, &mut running, now, d);
    fleet.devices[d] = Some(running);
}

/// Pops queue `q`'s head plus every same-class follower (in arrival
/// order, up to the batch bound), stages the tile, and returns it
/// ready for its first slice. Batching is the only reordering the
/// FIFO-fairness property permits: it may lift same-key requests past
/// other keys, but never reorders requests of one key.
fn start_batch(
    fleet: &mut Fleet,
    cfg: &ServeConfig,
    dev_cfg: &SystemConfig,
    cache: &ProgramCache,
    now: u64,
    d: usize,
    q: usize,
) -> Running {
    let head = fleet.queues[q]
        .pop_front()
        .expect("dispatch from an empty queue");
    let limit = cfg.batch_max.min(head.class.batch_limit()).max(1);
    let mut reqs = vec![head.id];
    if limit > 1 {
        let queue = &mut fleet.queues[q];
        let mut i = 0;
        while i < queue.len() && reqs.len() < limit {
            if queue[i].class == head.class && queue[i].priority == head.priority {
                let p = queue.remove(i).expect("scanned index is in range");
                reqs.push(p.id);
            } else {
                i += 1;
            }
        }
    }
    let batch = reqs.len();
    fleet.outcome.dispatches += 1;
    if batch > 1 {
        fleet.outcome.batches += 1;
    }
    let mut staged = head.class.stage(dev_cfg, batch, &cfg.schedule_dir, cache);
    staged.load_programs();
    for req in &reqs {
        let i = usize::try_from(*req).expect("id fits");
        let rec = &mut fleet.outcome.records[i];
        rec.dispatch = Some(now);
        rec.batch = batch;
    }
    Running {
        meta: JobMeta {
            reqs,
            limit: staged.limit,
            reader: staged.reader,
            home: d,
        },
        sys: Box::new(staged.sys),
        end: SliceEnd::Paused,
    }
}

/// Simulates one quantum on the job's own system (eagerly) and posts
/// the slice-end event at the fleet time it lands.
fn run_slice(fleet: &mut Fleet, cfg: &ServeConfig, running: &mut Running, now: u64, d: usize) {
    let start = running.sys.now();
    let pause = start.saturating_add(cfg.quantum).min(running.meta.limit);
    let res = cfg
        .engine
        .advance(&mut running.sys, pause, running.meta.limit)
        .expect("staged tile must not hang or trap");
    let end = running.sys.now();
    running.end = match res {
        RunOutcome::Quiesced(_) => SliceEnd::Done,
        RunOutcome::Paused(_) => SliceEnd::Paused,
    };
    let delta = end - start;
    fleet.outcome.device_busy[d] += delta;
    fleet.post(now + delta, EvKind::Device(d));
}

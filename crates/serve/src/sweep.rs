//! The offered-load sweep and the `BENCH_serving.json` report.
//!
//! A sweep runs the same seeded closed-loop workload at increasing
//! client counts until (and past) fleet saturation, one independent
//! [`serve`] run per point. Points are embarrassingly parallel —
//! every run owns its devices and RNG streams — so they fan out over
//! a work-stealing thread pool, with results collected back in input
//! order. Nothing in the report depends on wall clock or thread
//! count: the same seed and config produce a byte-identical
//! `BENCH_serving.json` at any `--jobs`.

use std::fs;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use vip_snap::{Fingerprint, Snapshot, Writer};

use crate::durable::{run_dir, DurableConfig, DurableError, PointStore};
use crate::metrics::{latency_summary, ms, throughput_rps, LatencySummary};
use crate::scheduler::{serve, serve_durable, ServeConfig, ServeOutcome};
use crate::workload::{LoadMode, MixEntry, Workload};

/// One sweep's shape.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Fleet and policy knobs shared by every point.
    pub serve: ServeConfig,
    /// Workload seed shared by every point.
    pub seed: u64,
    /// Requests per point.
    pub requests: usize,
    /// Mean closed-loop think time (cycles).
    pub think: u64,
    /// Client counts to sweep, in order.
    pub clients: Vec<usize>,
    /// Worker threads for the point fan-out (≥ 1; affects wall clock
    /// only, never results).
    pub jobs: usize,
    /// The request mix.
    pub mix: Vec<MixEntry>,
}

impl SweepConfig {
    /// The run fingerprint durable state is filed under: every
    /// result-affecting knob of the sweep, absorbed in declaration
    /// order. `jobs` is deliberately excluded — the fan-out width
    /// never changes results, so a resumed run may use a different
    /// one.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new();
        f.push_bytes(b"serve-sweep");
        self.serve.absorb(&mut f);
        f.push_u64(self.seed);
        f.push_usize(self.requests);
        f.push_u64(self.think);
        f.push_usize(self.clients.len());
        for &c in &self.clients {
            f.push_usize(c);
        }
        f.push_usize(self.mix.len());
        for entry in &self.mix {
            let mut w = Writer::new();
            entry.class.save(&mut w);
            f.push_bytes(&w.into_bytes());
            f.push_u64(u64::from(entry.weight));
            f.push_u64(u64::from(entry.priority));
        }
        f.finish()
    }
}

/// One completed sweep point.
#[derive(Debug)]
pub struct SweepPoint {
    /// Concurrent clients at this point.
    pub clients: usize,
    /// The full serving outcome.
    pub outcome: ServeOutcome,
}

/// Work-stealing fan-out that preserves input order in its results.
fn pull_points(cfg: &SweepConfig) -> Vec<SweepPoint> {
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<SweepPoint>>> =
        Mutex::new(cfg.clients.iter().map(|_| None).collect());
    let workers = cfg.jobs.max(1).min(cfg.clients.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&clients) = cfg.clients.get(i) else {
                    break;
                };
                let workload = Workload {
                    seed: cfg.seed,
                    requests: cfg.requests,
                    mode: LoadMode::Closed {
                        clients,
                        think: cfg.think,
                    },
                    mix: cfg.mix.clone(),
                };
                let outcome = serve(&cfg.serve, &workload);
                slots.lock().expect("sweep slots")[i] = Some(SweepPoint { clients, outcome });
            });
        }
    });
    slots
        .into_inner()
        .expect("sweep slots")
        .into_iter()
        .map(|p| p.expect("every point ran"))
        .collect()
}

/// Runs every point of the sweep.
#[must_use]
pub fn run_sweep(cfg: &SweepConfig) -> Vec<SweepPoint> {
    pull_points(cfg)
}

/// [`run_sweep`] with host-crash durability: each point journals its
/// scheduler events and checkpoints its fleet under
/// `run_dir(durable.dir, cfg.fingerprint())`, finished points collapse
/// to done-records, and with `durable.resume` set a rerun picks every
/// point up where the crash left it — producing results byte-identical
/// to an uninterrupted run. Without `resume`, prior state for this
/// configuration is wiped first.
///
/// # Errors
///
/// [`DurableError`] when the filesystem refuses a read or write
/// (corrupt or divergent persisted state is recovered by recomputing,
/// not reported).
pub fn run_sweep_durable(
    cfg: &SweepConfig,
    durable: &DurableConfig,
) -> Result<Vec<SweepPoint>, DurableError> {
    let fingerprint = cfg.fingerprint();
    if !durable.resume {
        let dir = run_dir(&durable.dir, fingerprint);
        if let Err(e) = fs::remove_dir_all(&dir) {
            if e.kind() != io::ErrorKind::NotFound {
                return Err(DurableError::Io {
                    op: "wipe run directory",
                    path: dir,
                    source: e,
                });
            }
        }
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<SweepPoint, DurableError>>>> =
        Mutex::new(cfg.clients.iter().map(|_| None).collect());
    let workers = cfg.jobs.max(1).min(cfg.clients.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&clients) = cfg.clients.get(i) else {
                    break;
                };
                let workload = Workload {
                    seed: cfg.seed,
                    requests: cfg.requests,
                    mode: LoadMode::Closed {
                        clients,
                        think: cfg.think,
                    },
                    mix: cfg.mix.clone(),
                };
                let result =
                    PointStore::open(&durable.dir, i, fingerprint).and_then(|mut store| {
                        serve_durable(&cfg.serve, &workload, &mut store, durable.checkpoint_every)
                            .map(|outcome| SweepPoint { clients, outcome })
                    });
                slots.lock().expect("sweep slots")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("sweep slots")
        .into_iter()
        .map(|p| p.expect("every point ran"))
        .collect()
}

fn point_json(p: &SweepPoint) -> String {
    let o = &p.outcome;
    let completed = o.records.iter().filter(|r| r.completion.is_some()).count();
    let lat = latency_summary(o).unwrap_or(LatencySummary {
        completed: 0,
        p50: 0,
        p99: 0,
        mean: 0,
        max: 0,
    });
    format!(
        "    {{\"clients\": {}, \"issued\": {}, \"completed\": {}, \"rejections\": {}, \
         \"throughput_rps\": {:.2}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"mean_ms\": {:.4}, \
         \"max_ms\": {:.4}, \"makespan_cycles\": {}, \"dispatches\": {}, \"batches\": {}, \
         \"preemptions\": {}, \"migrations\": {}, \"max_queue_depth\": [{}, {}], \
         \"cache_hits\": {}, \"cache_misses\": {}}}",
        p.clients,
        o.records.len(),
        completed,
        o.rejections,
        throughput_rps(o),
        ms(lat.p50),
        ms(lat.p99),
        ms(lat.mean),
        ms(lat.max),
        o.makespan,
        o.dispatches,
        o.batches,
        o.preemptions,
        o.migrations,
        o.max_queue_depth[0],
        o.max_queue_depth[1],
        o.cache_hits,
        o.cache_misses,
    )
}

/// Renders `BENCH_serving.json`. Deliberately free of wall-clock and
/// `jobs` fields so re-runs of the same seed/config are byte-identical
/// — the determinism gate diffs two of these.
#[must_use]
pub fn report_json(cfg: &SweepConfig, points: &[SweepPoint]) -> String {
    let entries: Vec<String> = points.iter().map(point_json).collect();
    format!(
        "{{\n  \"bench\": \"serving\",\n  \"unit_note\": \"closed-loop sweep over client \
         counts; latency percentiles are integer nearest-rank over per-request \
         arrival-to-completion cycles, converted to ms at the 1.25 GHz device clock; \
         throughput_rps = completed * clock_hz / makespan_cycles\",\n  \"seed\": {},\n  \
         \"engine\": \"{}\",\n  \"devices\": {},\n  \"queue_depth\": {},\n  \"quantum\": {},\n  \
         \"batch_max\": {},\n  \"requests_per_point\": {},\n  \"think_cycles\": {},\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        cfg.seed,
        cfg.serve.engine.label(),
        cfg.serve.devices,
        cfg.serve.queue_depth,
        cfg.serve.quantum,
        cfg.serve.batch_max,
        cfg.requests,
        cfg.think,
        entries.join(",\n")
    )
}

/// The serve-smoke acceptance gate: every point completed its full
/// request count, throughput is nonzero everywhere, and the curve is
/// sane — the most-loaded point's throughput and p99 both at or above
/// the least-loaded point's (monotone-then-saturating load curve).
///
/// # Errors
///
/// Returns a human-readable description of the first violated
/// property.
pub fn gate(points: &[SweepPoint], requests: usize) -> Result<(), String> {
    if points.is_empty() {
        return Err("sweep produced no points".into());
    }
    for p in points {
        let completed = p
            .outcome
            .records
            .iter()
            .filter(|r| r.completion.is_some())
            .count();
        if completed != requests {
            return Err(format!(
                "point clients={} completed {completed}/{requests} requests",
                p.clients
            ));
        }
        if throughput_rps(&p.outcome) <= 0.0 {
            return Err(format!("point clients={} has zero throughput", p.clients));
        }
    }
    let first = points.first().expect("non-empty");
    let last = points.last().expect("non-empty");
    let (t0, t1) = (
        throughput_rps(&first.outcome),
        throughput_rps(&last.outcome),
    );
    if t1 < t0 {
        return Err(format!(
            "throughput fell under load: {t0:.2} rps at {} clients vs {t1:.2} rps at {}",
            first.clients, last.clients
        ));
    }
    let p99 = |p: &SweepPoint| latency_summary(&p.outcome).map_or(0, |l| l.p99);
    if p99(last) < p99(first) {
        return Err(format!(
            "p99 shrank under load: {} cycles at {} clients vs {} cycles at {}",
            p99(first),
            first.clients,
            p99(last),
            last.clients
        ));
    }
    Ok(())
}

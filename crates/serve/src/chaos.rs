//! Seeded chaos injection and the fleet's failure taxonomy.
//!
//! Production fleets lose devices: bits flip, tiles wedge, whole chips
//! fall over mid-job. This module is the deterministic model of that
//! regime — every perturbation is drawn from a per-device
//! [`SplitMix64`](vip_rng::SplitMix64) stream seeded from
//! [`ChaosConfig::seed`], and the scheduler's event loop serializes
//! every draw, so a chaos run is exactly as reproducible as a clean
//! one: same seed + same config ⇒ the same crashes on the same slices,
//! the same recoveries, byte-identical reports at any `--jobs`.
//!
//! Three failure classes, all architecturally meaningful rather than
//! synthetic:
//!
//! * **Fault-poisoned devices** — a seeded fraction of the fleet runs
//!   with a live per-device [`FaultConfig`] (DRAM retention flips on
//!   the vault read path). Single-bit hits are absorbed by SECDED and
//!   never change results; double-bit hits surface as the typed
//!   [`SimError::UncorrectableMemory`](vip_core::SimError) machine
//!   check and fail the job cleanly.
//! * **Induced hangs** — a slice-start draw wedges the device by
//!   capping the engine's cycle budget at the slice boundary, so the
//!   run surfaces a genuine [`HangReport`](vip_core::HangReport) of
//!   the live machine (which PEs are parked where), not a fabricated
//!   error.
//! * **Device crashes** — a slice-end draw kills the device outright:
//!   the in-flight slice is lost, the job recovers elsewhere, and the
//!   device is quarantined (or, on a second draw, permanently
//!   decommissioned).
//!
//! The recovery half lives in [`scheduler`](crate::scheduler); this
//! module also carries the chaos *sweep* — availability, recovery
//! latency, and goodput versus injected failure rate, rendered as
//! `BENCH_chaos.json`.

use std::fs;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use vip_core::FailureClass;
use vip_faults::FaultConfig;
use vip_rng::SplitMix64;
use vip_snap::{Fingerprint, Reader, SnapError, Snapshot, Writer};

use crate::durable::{run_dir, DurableConfig, DurableError, PointStore};
use crate::metrics::{availability_pct, ms, recovery_summary, throughput_rps};
use crate::scheduler::{serve, serve_durable, Rejection, ServeConfig, ServeOutcome};
use crate::workload::{LoadMode, MixEntry, Workload};

/// Chaos-model knobs. All rates are integer parts-per-million
/// ([`vip_faults::PPM_SCALE`]) so configs stay `Copy + Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for every per-device chaos stream (independent of the
    /// workload seed).
    pub seed: u64,
    /// Per-slice-end chance the device crashes, losing the slice.
    pub crash_ppm: u32,
    /// Given a crash, chance it is a permanent decommission rather
    /// than a recoverable quarantine.
    pub decommission_ppm: u32,
    /// Per-slice-start chance the slice wedges (the engine's budget is
    /// capped at the slice boundary, surfacing a genuine hang report).
    pub hang_ppm: u32,
    /// Per-device chance (drawn once at fleet construction) the device
    /// runs with the live fault injector below.
    pub flaky_ppm: u32,
    /// Fault template applied to flaky devices; each device's sections
    /// are re-seeded from its own chaos stream so two flaky devices
    /// fault independently.
    pub faults: FaultConfig,
    /// Periodic-checkpoint cadence: a running job snapshots every this
    /// many completed slices (`0` disables periodic checkpoints; jobs
    /// then always recover by re-running from admission).
    pub checkpoint_every: u32,
    /// Dispatch attempts a job gets before it is terminally failed
    /// (`1` = no retries).
    pub max_attempts: u32,
    /// Base re-dispatch backoff in fleet cycles; doubles per failed
    /// attempt (capped at `backoff << 6`).
    pub retry_backoff: u64,
    /// Base quarantine length in fleet cycles after a device failure;
    /// doubles per failed health probe (capped at `quarantine << 6`).
    pub quarantine: u64,
    /// Chance a quarantined device passes its health probe and
    /// rejoins the fleet.
    pub probe_pass_ppm: u32,
    /// Failed health probes before a quarantined device is
    /// permanently decommissioned (the open circuit-breaker).
    pub max_strikes: u32,
    /// Per-job wall-clock (fleet-cycle) deadline measured from
    /// admission; a job that would dispatch or retry past it is
    /// terminally rejected with [`Rejection::Timeout`]. `0` disables.
    pub deadline: u64,
    /// Load-shedding floor: while `healthy devices * 100 < floor *
    /// fleet size`, arriving batch-priority work is terminally shed
    /// with [`Rejection::Shed`]. `0` disables.
    pub shed_floor_pct: u32,
}

impl ChaosConfig {
    /// A moderate default chaos regime: sub-percent per-slice crash
    /// and hang rates, a quarter of the fleet fault-poisoned, periodic
    /// checkpoints every other slice, bounded retries. No deadline and
    /// no shedding — enable those knobs explicitly.
    #[must_use]
    pub fn default_rates(seed: u64) -> Self {
        ChaosConfig {
            seed,
            crash_ppm: 8_000,
            decommission_ppm: 80_000,
            hang_ppm: 6_000,
            flaky_ppm: 250_000,
            faults: FaultConfig {
                dram: Some(vip_faults::DramFaultConfig {
                    seed,
                    single_bit_ppm: 40,
                    double_bit_ppm: 25,
                }),
                noc: None,
                pe: None,
            },
            checkpoint_every: 2,
            max_attempts: 5,
            retry_backoff: 25_000,
            quarantine: 200_000,
            probe_pass_ppm: 600_000,
            max_strikes: 6,
            deadline: 0,
            shed_floor_pct: 0,
        }
    }

    /// Every injection rate — crash, hang, and the fault template's
    /// per-access rates — scaled to `pct` percent of its configured
    /// value (saturating at certainty): the knob the chaos sweep
    /// turns. At 0 % nothing injects, so the sweep's baseline point is
    /// the unperturbed fleet. Policy knobs (retries, checkpoints,
    /// quarantine) and the flaky-device draw are left alone, so the
    /// same devices stay flaky across a sweep — only how hard their
    /// faults fire changes.
    #[must_use]
    pub fn scaled(mut self, pct: u32) -> Self {
        let scale = |ppm: u32| {
            u32::try_from((u64::from(ppm) * u64::from(pct) / 100).min(vip_faults::PPM_SCALE))
                .unwrap_or(u32::MAX)
        };
        self.crash_ppm = scale(self.crash_ppm);
        self.hang_ppm = scale(self.hang_ppm);
        if let Some(dram) = self.faults.dram.as_mut() {
            dram.single_bit_ppm = scale(dram.single_bit_ppm);
            dram.double_bit_ppm = scale(dram.double_bit_ppm);
        }
        if let Some(noc) = self.faults.noc.as_mut() {
            noc.corrupt_ppm = scale(noc.corrupt_ppm);
            noc.drop_ppm = scale(noc.drop_ppm);
        }
        if let Some(pe) = self.faults.pe.as_mut() {
            pe.writeback_flip_ppm = scale(pe.writeback_flip_ppm);
        }
        self
    }

    /// The per-device chaos stream: independent of the workload's
    /// streams and of every other device's.
    #[must_use]
    pub fn device_rng(&self, device: usize) -> SplitMix64 {
        SplitMix64::new(self.seed ^ 0x0063_6861_6f73 ^ ((device as u64) << 32))
    }

    /// The fault template re-seeded for one device, so flaky devices
    /// draw independent fault streams.
    #[must_use]
    pub fn device_faults(&self, device: usize) -> FaultConfig {
        let salt = SplitMix64::new(self.seed ^ 0x6661_756c_7473 ^ (device as u64)).next_u64();
        let mut faults = self.faults;
        if let Some(dram) = faults.dram.as_mut() {
            dram.seed ^= salt;
        }
        if let Some(noc) = faults.noc.as_mut() {
            noc.seed ^= salt;
        }
        if let Some(pe) = faults.pe.as_mut() {
            pe.seed ^= salt;
        }
        faults
    }
}

/// Why a job's dispatch died under it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The chaos model crashed the device at a slice end.
    Crash,
    /// The device's engine surfaced a typed [`SimError`]
    /// (vip_core::SimError) — a hang (organic or induced), a machine
    /// check on poisoned data, a trap.
    Sim(FailureClass),
}

impl FailureKind {
    /// Stable lower-case label for reports and assertions.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Crash => "crash",
            FailureKind::Sim(class) => class.label(),
        }
    }
}

impl Snapshot for FailureKind {
    fn save(&self, w: &mut Writer) {
        match self {
            FailureKind::Crash => w.u8(0),
            FailureKind::Sim(class) => {
                w.u8(1);
                class.save(w);
            }
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => FailureKind::Crash,
            1 => FailureKind::Sim(FailureClass::restore(r)?),
            _ => return Err(SnapError::Corrupt("failure kind tag")),
        })
    }
}

/// A request's typed terminal status. Every issued request ends in
/// exactly one of these; [`Terminal::Pending`] is the in-flight
/// placeholder and never survives a finished run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// Still in flight (never present in a returned outcome).
    Pending,
    /// Completed with no failure along the way.
    Completed,
    /// Failed at least once, then completed — `via_snapshot` says the
    /// last recovery restored a periodic checkpoint rather than
    /// re-running from admission.
    Recovered {
        /// Total dispatch attempts (≥ 2).
        attempts: u32,
        /// Whether the final recovery restored a snapshot.
        via_snapshot: bool,
    },
    /// Terminally refused: queue-full (open loop), deadline timeout,
    /// or load shedding.
    Rejected(Rejection),
    /// Every dispatch attempt died; the last failure's kind and the
    /// attempt count.
    Failed {
        /// What killed the final attempt.
        kind: FailureKind,
        /// Dispatch attempts consumed.
        attempts: u32,
    },
}

impl Terminal {
    /// Whether the request produced results.
    #[must_use]
    pub fn is_served(self) -> bool {
        matches!(self, Terminal::Completed | Terminal::Recovered { .. })
    }
}

impl Snapshot for Terminal {
    fn save(&self, w: &mut Writer) {
        match self {
            Terminal::Pending => w.u8(0),
            Terminal::Completed => w.u8(1),
            Terminal::Recovered {
                attempts,
                via_snapshot,
            } => {
                w.u8(2);
                w.u32(*attempts);
                w.bool(*via_snapshot);
            }
            Terminal::Rejected(rejection) => {
                w.u8(3);
                rejection.save(w);
            }
            Terminal::Failed { kind, attempts } => {
                w.u8(4);
                kind.save(w);
                w.u32(*attempts);
            }
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Terminal::Pending,
            1 => Terminal::Completed,
            2 => Terminal::Recovered {
                attempts: r.u32()?,
                via_snapshot: r.bool()?,
            },
            3 => Terminal::Rejected(Rejection::restore(r)?),
            4 => Terminal::Failed {
                kind: FailureKind::restore(r)?,
                attempts: r.u32()?,
            },
            _ => return Err(SnapError::Corrupt("terminal status tag")),
        })
    }
}

/// Chaos and recovery counters for one serving run. All zero when
/// chaos is disabled and nothing faulted.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ChaosStats {
    /// Slice-end crash draws that fired.
    pub crashes: u64,
    /// Slice-start hang draws that actually wedged a slice.
    pub induced_hangs: u64,
    /// Dispatches that died with [`SimError::Hang`](vip_core::SimError)
    /// (induced or organic).
    pub hang_failures: u64,
    /// Dispatches that died with a non-hang [`SimError`]
    /// (vip_core::SimError) — machine checks, traps, NoC give-ups.
    pub fault_failures: u64,
    /// Failed jobs re-queued for another attempt.
    pub job_retries: u64,
    /// Recoveries that restored a periodic snapshot onto a device.
    pub recoveries_snapshot: u64,
    /// Recoveries that re-ran the job from admission.
    pub recoveries_restart: u64,
    /// Devices placed in quarantine.
    pub quarantines: u64,
    /// Health probes run on quarantined devices.
    pub probes: u64,
    /// Health probes that failed (device stayed out).
    pub probe_failures: u64,
    /// Devices permanently decommissioned (crash draw or opened
    /// circuit breaker).
    pub decommissions: u64,
    /// Requests terminally rejected by the per-job deadline.
    pub timeouts: u64,
    /// Requests terminally shed for lack of healthy capacity.
    pub shed: u64,
    /// Requests whose every dispatch attempt died.
    pub failed: u64,
}

impl Snapshot for ChaosStats {
    fn save(&self, w: &mut Writer) {
        for v in [
            self.crashes,
            self.induced_hangs,
            self.hang_failures,
            self.fault_failures,
            self.job_retries,
            self.recoveries_snapshot,
            self.recoveries_restart,
            self.quarantines,
            self.probes,
            self.probe_failures,
            self.decommissions,
            self.timeouts,
            self.shed,
            self.failed,
        ] {
            w.u64(v);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(ChaosStats {
            crashes: r.u64()?,
            induced_hangs: r.u64()?,
            hang_failures: r.u64()?,
            fault_failures: r.u64()?,
            job_retries: r.u64()?,
            recoveries_snapshot: r.u64()?,
            recoveries_restart: r.u64()?,
            quarantines: r.u64()?,
            probes: r.u64()?,
            probe_failures: r.u64()?,
            decommissions: r.u64()?,
            timeouts: r.u64()?,
            shed: r.u64()?,
            failed: r.u64()?,
        })
    }
}

/// One chaos sweep's shape: a fixed closed-loop workload replayed at
/// increasing chaos intensity.
#[derive(Debug, Clone)]
pub struct ChaosSweepConfig {
    /// Fleet and policy knobs; `serve.chaos` must be `Some` — it is
    /// the 100 % point the scales multiply.
    pub serve: ServeConfig,
    /// Workload seed shared by every point.
    pub seed: u64,
    /// Requests per point.
    pub requests: usize,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Mean client think time (cycles).
    pub think: u64,
    /// Chaos intensity per point, as percent of the configured crash
    /// and hang rates (0 = clean baseline).
    pub scales: Vec<u32>,
    /// Worker threads for the point fan-out (wall clock only, never
    /// results).
    pub jobs: usize,
    /// The request mix.
    pub mix: Vec<MixEntry>,
}

impl ChaosSweepConfig {
    /// The run fingerprint durable state is filed under — every
    /// result-affecting knob of the chaos sweep. `jobs` is excluded:
    /// the fan-out width never changes results.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new();
        f.push_bytes(b"chaos-sweep");
        self.serve.absorb(&mut f);
        f.push_u64(self.seed);
        f.push_usize(self.requests);
        f.push_usize(self.clients);
        f.push_u64(self.think);
        f.push_usize(self.scales.len());
        for &s in &self.scales {
            f.push_u64(u64::from(s));
        }
        f.push_usize(self.mix.len());
        for entry in &self.mix {
            let mut w = Writer::new();
            entry.class.save(&mut w);
            f.push_bytes(&w.into_bytes());
            f.push_u64(u64::from(entry.weight));
            f.push_u64(u64::from(entry.priority));
        }
        f.finish()
    }
}

/// One completed chaos sweep point.
#[derive(Debug)]
pub struct ChaosPoint {
    /// Percent of the configured crash/hang rates injected here.
    pub scale: u32,
    /// The full serving outcome.
    pub outcome: ServeOutcome,
}

/// Runs every point of the chaos sweep: the same seeded closed-loop
/// workload at each chaos scale, fanned out over a work-stealing pool
/// with results in input order. Deterministic at any `jobs`.
///
/// # Panics
///
/// Panics if `serve.chaos` is `None` — a chaos sweep over a fleet
/// with chaos disabled would sweep nothing.
#[must_use]
pub fn run_chaos_sweep(cfg: &ChaosSweepConfig) -> Vec<ChaosPoint> {
    let base = cfg.serve.chaos.expect("chaos sweep needs a chaos config");
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<ChaosPoint>>> =
        Mutex::new(cfg.scales.iter().map(|_| None).collect());
    let workers = cfg.jobs.max(1).min(cfg.scales.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&scale) = cfg.scales.get(i) else {
                    break;
                };
                let mut serve_cfg = cfg.serve.clone();
                serve_cfg.chaos = Some(base.scaled(scale));
                let workload = Workload {
                    seed: cfg.seed,
                    requests: cfg.requests,
                    mode: LoadMode::Closed {
                        clients: cfg.clients,
                        think: cfg.think,
                    },
                    mix: cfg.mix.clone(),
                };
                let outcome = serve(&serve_cfg, &workload);
                slots.lock().expect("chaos slots")[i] = Some(ChaosPoint { scale, outcome });
            });
        }
    });
    slots
        .into_inner()
        .expect("chaos slots")
        .into_iter()
        .map(|p| p.expect("every point ran"))
        .collect()
}

/// [`run_chaos_sweep`] with host-crash durability: each point journals
/// its scheduler events and checkpoints its whole fleet (chaos RNG
/// cursors included) under `run_dir(durable.dir, cfg.fingerprint())`,
/// and with `durable.resume` set a rerun continues every interrupted
/// point — the final report is byte-identical to an uninterrupted
/// run's. Without `resume`, prior state for this configuration is
/// wiped first.
///
/// # Errors
///
/// [`DurableError`] when the filesystem refuses a read or write.
///
/// # Panics
///
/// Panics if `serve.chaos` is `None`, like [`run_chaos_sweep`].
pub fn run_chaos_sweep_durable(
    cfg: &ChaosSweepConfig,
    durable: &DurableConfig,
) -> Result<Vec<ChaosPoint>, DurableError> {
    let base = cfg.serve.chaos.expect("chaos sweep needs a chaos config");
    let fingerprint = cfg.fingerprint();
    if !durable.resume {
        let dir = run_dir(&durable.dir, fingerprint);
        if let Err(e) = fs::remove_dir_all(&dir) {
            if e.kind() != io::ErrorKind::NotFound {
                return Err(DurableError::Io {
                    op: "wipe run directory",
                    path: dir,
                    source: e,
                });
            }
        }
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<ChaosPoint, DurableError>>>> =
        Mutex::new(cfg.scales.iter().map(|_| None).collect());
    let workers = cfg.jobs.max(1).min(cfg.scales.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&scale) = cfg.scales.get(i) else {
                    break;
                };
                let mut serve_cfg = cfg.serve.clone();
                serve_cfg.chaos = Some(base.scaled(scale));
                let workload = Workload {
                    seed: cfg.seed,
                    requests: cfg.requests,
                    mode: LoadMode::Closed {
                        clients: cfg.clients,
                        think: cfg.think,
                    },
                    mix: cfg.mix.clone(),
                };
                let result =
                    PointStore::open(&durable.dir, i, fingerprint).and_then(|mut store| {
                        serve_durable(&serve_cfg, &workload, &mut store, durable.checkpoint_every)
                            .map(|outcome| ChaosPoint { scale, outcome })
                    });
                slots.lock().expect("chaos slots")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("chaos slots")
        .into_iter()
        .map(|p| p.expect("every point ran"))
        .collect()
}

fn point_json(p: &ChaosPoint) -> String {
    let o = &p.outcome;
    let served = o.records.iter().filter(|r| r.status.is_served()).count();
    let recovered = o
        .records
        .iter()
        .filter(|r| matches!(r.status, crate::chaos::Terminal::Recovered { .. }))
        .count();
    let rec_lat = recovery_summary(o);
    let c = &o.chaos;
    format!(
        "    {{\"scale_pct\": {}, \"issued\": {}, \"served\": {}, \"recovered\": {}, \
         \"failed\": {}, \"timeouts\": {}, \"shed\": {}, \"rejections\": {}, \
         \"availability_pct\": {:.4}, \"goodput_rps\": {:.2}, \
         \"recovery_p50_ms\": {:.4}, \"recovery_p99_ms\": {:.4}, \
         \"crashes\": {}, \"induced_hangs\": {}, \"hang_failures\": {}, \
         \"fault_failures\": {}, \"job_retries\": {}, \"recoveries_snapshot\": {}, \
         \"recoveries_restart\": {}, \"quarantines\": {}, \"probes\": {}, \
         \"probe_failures\": {}, \"decommissions\": {}, \"makespan_cycles\": {}}}",
        p.scale,
        o.records.len(),
        served,
        recovered,
        c.failed,
        c.timeouts,
        c.shed,
        o.rejections,
        availability_pct(o),
        throughput_rps(o),
        ms(rec_lat.map_or(0, |l| l.p50)),
        ms(rec_lat.map_or(0, |l| l.p99)),
        c.crashes,
        c.induced_hangs,
        c.hang_failures,
        c.fault_failures,
        c.job_retries,
        c.recoveries_snapshot,
        c.recoveries_restart,
        c.quarantines,
        c.probes,
        c.probe_failures,
        c.decommissions,
        o.makespan,
    )
}

/// Renders `BENCH_chaos.json`: availability, recovery latency, and
/// goodput versus injected failure rate. Free of wall-clock and
/// `jobs` fields, so re-runs of the same seed/config are
/// byte-identical — the determinism gate diffs two of these.
#[must_use]
pub fn chaos_report_json(cfg: &ChaosSweepConfig, points: &[ChaosPoint]) -> String {
    let chaos = cfg.serve.chaos.expect("chaos sweep needs a chaos config");
    let entries: Vec<String> = points.iter().map(point_json).collect();
    format!(
        "{{\n  \"bench\": \"chaos\",\n  \"unit_note\": \"closed-loop fleet sweep over chaos \
         intensity (percent of the configured per-slice crash/hang rates); availability = \
         served requests / issued; goodput_rps = served * clock_hz / makespan_cycles; \
         recovery latency is arrival-to-completion of failed-then-recovered requests, \
         nearest-rank, ms at the 1.25 GHz device clock\",\n  \"seed\": {},\n  \
         \"chaos_seed\": {},\n  \"engine\": \"{}\",\n  \"devices\": {},\n  \
         \"queue_depth\": {},\n  \"quantum\": {},\n  \"crash_ppm\": {},\n  \
         \"hang_ppm\": {},\n  \"flaky_ppm\": {},\n  \"checkpoint_every\": {},\n  \
         \"max_attempts\": {},\n  \"deadline\": {},\n  \"shed_floor_pct\": {},\n  \
         \"requests_per_point\": {},\n  \"clients\": {},\n  \"think_cycles\": {},\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        cfg.seed,
        chaos.seed,
        cfg.serve.engine.label(),
        cfg.serve.devices,
        cfg.serve.queue_depth,
        cfg.serve.quantum,
        chaos.crash_ppm,
        chaos.hang_ppm,
        chaos.flaky_ppm,
        chaos.checkpoint_every,
        chaos.max_attempts,
        chaos.deadline,
        chaos.shed_floor_pct,
        cfg.requests,
        cfg.clients,
        cfg.think,
        entries.join(",\n")
    )
}

/// The chaos-smoke acceptance gate: the run held together under
/// injection. Specifically — every request reached a typed terminal
/// status; the clean (scale-0) point served everything; availability
/// stayed at or above `floor_pct` everywhere; the loaded end actually
/// injected failures; and every failure was either recovered or
/// accounted terminal (served + failed + rejected = issued).
///
/// # Errors
///
/// Returns a human-readable description of the first violated
/// property.
pub fn chaos_gate(points: &[ChaosPoint], floor_pct: f64) -> Result<(), String> {
    if points.is_empty() {
        return Err("chaos sweep produced no points".into());
    }
    for p in points {
        let o = &p.outcome;
        let mut served = 0usize;
        let mut failed = 0usize;
        let mut rejected = 0usize;
        for r in &o.records {
            match r.status {
                Terminal::Pending => {
                    return Err(format!(
                        "scale {}%: request {} ended without a terminal status",
                        p.scale, r.id
                    ));
                }
                Terminal::Completed | Terminal::Recovered { .. } => served += 1,
                Terminal::Failed { .. } => failed += 1,
                Terminal::Rejected(_) => rejected += 1,
            }
        }
        if served + failed + rejected != o.records.len() {
            return Err(format!(
                "scale {}%: {} served + {} failed + {} rejected ≠ {} issued",
                p.scale,
                served,
                failed,
                rejected,
                o.records.len()
            ));
        }
        let avail = availability_pct(o);
        if p.scale == 0 && served != o.records.len() {
            return Err(format!(
                "clean point served only {}/{} requests",
                served,
                o.records.len()
            ));
        }
        if avail < floor_pct {
            return Err(format!(
                "scale {}%: availability {avail:.2}% below the {floor_pct:.2}% floor",
                p.scale
            ));
        }
    }
    let hottest = points.last().expect("non-empty");
    let c = &hottest.outcome.chaos;
    if hottest.scale > 0 && c.crashes + c.hang_failures + c.fault_failures == 0 {
        return Err(format!(
            "scale {}% injected no failures — the sweep proves nothing",
            hottest.scale
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_is_integer_exact_and_saturating() {
        let base = ChaosConfig::default_rates(7);
        let half = base.scaled(50);
        assert_eq!(half.crash_ppm, base.crash_ppm / 2);
        assert_eq!(half.hang_ppm, base.hang_ppm / 2);
        assert_eq!(
            half.faults.dram.unwrap().single_bit_ppm,
            base.faults.dram.unwrap().single_bit_ppm / 2
        );
        // Policy knobs and the flaky draw are untouched.
        assert_eq!(half.flaky_ppm, base.flaky_ppm);
        assert_eq!(half.max_attempts, base.max_attempts);
        // At 0 % nothing injects at all: the baseline point is clean.
        let zero = base.scaled(0);
        assert_eq!((zero.crash_ppm, zero.hang_ppm), (0, 0));
        assert!(zero.faults.is_inert());
        let huge = base.scaled(u32::MAX);
        assert_eq!(huge.crash_ppm, vip_faults::PPM_SCALE as u32);
    }

    #[test]
    fn device_streams_and_faults_are_independent() {
        let cfg = ChaosConfig::default_rates(9);
        assert_ne!(cfg.device_rng(0).next_u64(), cfg.device_rng(1).next_u64());
        let f0 = cfg.device_faults(0);
        let f1 = cfg.device_faults(1);
        assert_ne!(f0.dram.unwrap().seed, f1.dram.unwrap().seed);
        // Rates are preserved; only seeds move.
        assert_eq!(
            f0.dram.unwrap().double_bit_ppm,
            cfg.faults.dram.unwrap().double_bit_ppm
        );
    }

    #[test]
    fn terminal_classification() {
        assert!(Terminal::Completed.is_served());
        assert!(Terminal::Recovered {
            attempts: 2,
            via_snapshot: true
        }
        .is_served());
        assert!(!Terminal::Pending.is_served());
        assert!(!Terminal::Failed {
            kind: FailureKind::Crash,
            attempts: 5
        }
        .is_served());
        assert_eq!(FailureKind::Crash.label(), "crash");
        assert_eq!(
            FailureKind::Sim(vip_core::FailureClass::Memory).label(),
            "memory"
        );
    }
}

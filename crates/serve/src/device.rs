//! Device stepping: quantum-sliced execution on a selectable engine.
//!
//! Every simulated device advances through its current job in bounded
//! quanta using the engines' `*_until` pause points, so the scheduler
//! only ever observes (and acts at) slice boundaries. Pausing is
//! behaviour-preserving on every engine, which is what makes
//! preempt-via-snapshot bit-exact: a job paused, snapshotted, and
//! restored onto any idle device finishes with the same architectural
//! results as one that ran uninterrupted.

use vip_core::{RunOutcome, SimError, System};

/// Which stepping engine a fleet's devices run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Event-driven fast-forward ([`System::run_until`]) — exact
    /// cycles, the serving default.
    Fast,
    /// Cycle-by-cycle reference ([`System::run_naive_until`]) — exact
    /// cycles, slow; the conformance baseline.
    Naive,
    /// Two-tier functional ([`System::run_functional_until`]) —
    /// bit-identical architectural results, estimated cycles, pauses
    /// loosely (a slice may overrun its quantum by up to a drain).
    Functional,
}

impl Engine {
    /// Report / CLI label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Engine::Fast => "fast",
            Engine::Naive => "naive",
            Engine::Functional => "functional",
        }
    }

    /// Parses a CLI label.
    #[must_use]
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "fast" => Some(Engine::Fast),
            "naive" => Some(Engine::Naive),
            "functional" => Some(Engine::Functional),
            _ => None,
        }
    }

    /// Advances `sys` until it quiesces or its clock reaches
    /// `pause_at`, whichever comes first, under this engine's pause
    /// contract. `limit` is the job's absolute cycle budget.
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`SimError`] (a hang at `limit`, or a
    /// typed trap).
    pub fn advance(
        self,
        sys: &mut System,
        pause_at: u64,
        limit: u64,
    ) -> Result<RunOutcome, SimError> {
        match self {
            Engine::Fast => sys.run_until(pause_at, limit),
            Engine::Naive => sys.run_naive_until(pause_at, limit),
            Engine::Functional => sys.run_functional_until(pause_at, limit),
        }
    }
}

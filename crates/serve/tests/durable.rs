//! Durability conformance: a serving run that journals, checkpoints,
//! crashes, and resumes must produce an outcome **byte-identical** to
//! an uninterrupted run — and every corrupted-state path must resolve
//! to a typed recovery, never a panic and never silently wrong output.
//!
//! The in-process crash stand-in is `serve_durable_interrupted`, which
//! abandons the run at an exact settled-event boundary, leaving the
//! store as a host crash there would. Process-level SIGKILL coverage
//! (including kills *inside* checkpoint and journal writes) lives in
//! the bench crate's `serve_resume` test, which drives the real
//! binaries through the `VIP_DURABLE_CRASH` hook.

use std::path::{Path, PathBuf};

use vip_rng::SplitMix64;
use vip_serve::{
    chaos_report_json, report_json, run_chaos_sweep, run_chaos_sweep_durable, run_dir, run_sweep,
    run_sweep_durable, serve, serve_durable, serve_durable_interrupted, ChaosConfig,
    ChaosSweepConfig, DurableConfig, Engine, LoadMode, PointStore, ServeConfig, ServeOutcome,
    SweepConfig, Workload,
};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vip-durable-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small fleet with slices short enough that jobs span several, so
/// checkpoints land mid-job and devices carry live state.
fn fleet(chaos: Option<ChaosConfig>) -> ServeConfig {
    ServeConfig {
        devices: 3,
        queue_depth: 8,
        quantum: 15_000,
        batch_max: 2,
        engine: Engine::Fast,
        chaos,
        ..ServeConfig::default()
    }
}

/// Chaos hot enough that a short run exercises crashes, hangs,
/// quarantines, and both recovery paths.
fn hot_chaos(seed: u64) -> ChaosConfig {
    let mut c = ChaosConfig::default_rates(seed);
    c.crash_ppm = 60_000;
    c.hang_ppm = 45_000;
    c.flaky_ppm = 500_000;
    if let Some(dram) = c.faults.dram.as_mut() {
        dram.single_bit_ppm = 100;
        dram.double_bit_ppm = 60;
    }
    c.checkpoint_every = 1;
    c.max_attempts = 6;
    c.retry_backoff = 10_000;
    c.quarantine = 50_000;
    c.probe_pass_ppm = 700_000;
    c
}

fn closed(seed: u64, requests: usize, clients: usize) -> Workload {
    Workload {
        seed,
        requests,
        mode: LoadMode::Closed {
            clients,
            think: 20_000,
        },
        mix: Workload::small_mix(),
    }
}

const FP: u64 = 0xd0d0_cafe_f00d_0001;

fn open_store(root: &Path) -> PointStore {
    PointStore::open(root, 0, FP).expect("open point store")
}

/// Files of point 0 in the run directory with the given extension.
fn point_files(root: &Path, ext: &str) -> Vec<String> {
    let dir = run_dir(root, FP);
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut names: Vec<String> = entries
        .flatten()
        .filter_map(|e| e.file_name().to_str().map(str::to_owned))
        .filter(|n| n.starts_with("p0") && n.ends_with(ext))
        .collect();
    names.sort();
    names
}

fn assert_identical(got: &ServeOutcome, want: &ServeOutcome, what: &str) {
    assert_eq!(got, want, "{what}: resumed outcome differs from reference");
}

#[test]
fn durable_run_matches_plain_serve_and_reloads_its_done_record() {
    let root = scratch("clean");
    let cfg = fleet(None);
    let wl = closed(0x51, 16, 4);
    let want = serve(&cfg, &wl);

    let mut store = open_store(&root);
    let got = serve_durable(&cfg, &wl, &mut store, 64).expect("durable run");
    assert_identical(&got, &want, "first durable run");

    // A finished point collapses to its done-record alone.
    assert_eq!(point_files(&root, ".done").len(), 1);
    assert!(point_files(&root, ".ckpt").is_empty());
    assert!(point_files(&root, ".journal").is_empty());

    // A rerun loads the done-record without recomputing.
    let mut store = open_store(&root);
    let again = serve_durable(&cfg, &wl, &mut store, 64).expect("done-record reload");
    assert_identical(&again, &want, "done-record reload");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn chaos_durable_run_matches_plain_serve() {
    let root = scratch("chaos");
    let cfg = fleet(Some(hot_chaos(0xc4a0)));
    let wl = closed(0x31, 20, 6);
    let want = serve(&cfg, &wl);
    let mut store = open_store(&root);
    let got = serve_durable(&cfg, &wl, &mut store, 32).expect("durable chaos run");
    assert_identical(&got, &want, "chaos durable run");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn resume_is_byte_identical_at_every_interrupt_point() {
    let cfg = fleet(Some(hot_chaos(0xc4a0)));
    let wl = closed(0x77, 14, 4);
    let want = serve(&cfg, &wl);
    // Interrupt points spanning mid-slice, checkpoint boundaries, and
    // well past the end of the run; cadence 0 is journal-only mode.
    for cadence in [16u64, 0] {
        for stop in [1u64, 3, 7, 16, 17, 48, 120, 250, 1_000, 100_000] {
            let root = scratch(&format!("stop-{cadence}-{stop}"));
            let mut store = open_store(&root);
            serve_durable_interrupted(&cfg, &wl, &mut store, cadence, stop)
                .expect("interrupted run");
            drop(store);
            let mut store = open_store(&root);
            let got = serve_durable(&cfg, &wl, &mut store, cadence).expect("resumed run");
            assert_identical(&got, &want, &format!("cadence {cadence}, stop {stop}"));
            let _ = std::fs::remove_dir_all(&root);
        }
    }
}

#[test]
fn chained_crashes_resume_to_the_same_bytes() {
    let cfg = fleet(Some(hot_chaos(0xdead)));
    let wl = closed(0x90, 14, 4);
    let want = serve(&cfg, &wl);
    let root = scratch("chained");
    // Die three times at increasing depths, then finish.
    for stop in [5u64, 40, 90] {
        let mut store = open_store(&root);
        serve_durable_interrupted(&cfg, &wl, &mut store, 16, stop).expect("interrupted run");
    }
    let mut store = open_store(&root);
    let got = serve_durable(&cfg, &wl, &mut store, 16).expect("final resume");
    assert_identical(&got, &want, "three chained crashes");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn gc_retains_exactly_one_checkpoint_generation() {
    let cfg = fleet(Some(hot_chaos(0xbeef)));
    let wl = closed(0x13, 14, 4);
    let want = serve(&cfg, &wl);
    let root = scratch("gc");
    let mut store = open_store(&root);
    serve_durable_interrupted(&cfg, &wl, &mut store, 16, 40).expect("interrupted run");
    drop(store);

    // Segment rotation is the GC: after 40 events at cadence 16, two
    // checkpoints were taken but only the newest generation survives —
    // one .ckpt and its one .journal segment, same ordinal, no .done.
    let ckpts = point_files(&root, ".ckpt");
    let journals = point_files(&root, ".journal");
    assert_eq!(
        ckpts.len(),
        1,
        "superseded checkpoints not pruned: {ckpts:?}"
    );
    assert_eq!(
        journals.len(),
        1,
        "superseded segments not pruned: {journals:?}"
    );
    assert_eq!(
        ckpts[0].trim_end_matches(".ckpt"),
        journals[0].trim_end_matches(".journal"),
        "checkpoint and journal generations disagree"
    );
    assert!(point_files(&root, ".done").is_empty());
    assert!(point_files(&root, ".tmp").is_empty());

    // And the retained set alone is sufficient to finish the run.
    let mut store = open_store(&root);
    let got = serve_durable(&cfg, &wl, &mut store, 16).expect("resume from retained set");
    assert_identical(&got, &want, "resume from GC-retained set");
    let _ = std::fs::remove_dir_all(&root);
}

/// Leaves an interrupted run in `root` and returns the paths of its
/// checkpoint and journal files. The stop point must land inside the
/// run (the small closed-loop workloads here settle ~60–80 events) so
/// the state genuinely represents a crash, not a finished point.
fn interrupted_state(
    root: &Path,
    cfg: &ServeConfig,
    wl: &Workload,
    stop: u64,
) -> (PathBuf, PathBuf) {
    let mut store = open_store(root);
    serve_durable_interrupted(cfg, wl, &mut store, 16, stop).expect("interrupted run");
    drop(store);
    assert!(
        point_files(root, ".done").is_empty(),
        "run finished before event {stop}; pick an earlier stop point"
    );
    let ckpts = point_files(root, ".ckpt");
    assert!(
        !ckpts.is_empty(),
        "no checkpoint landed before event {stop}"
    );
    let dir = run_dir(root, FP);
    let ckpt = dir.join(&ckpts[0]);
    let journal = dir.join(&point_files(root, ".journal")[0]);
    (ckpt, journal)
}

#[test]
fn torn_journal_tail_is_truncated_on_resume() {
    let cfg = fleet(Some(hot_chaos(0x70a0)));
    let wl = closed(0x21, 14, 4);
    let want = serve(&cfg, &wl);
    let root = scratch("torn");
    let (_, journal) = interrupted_state(&root, &cfg, &wl, 33);

    // A crash mid-append leaves half a frame: fake one by appending a
    // plausible-but-incomplete record.
    let mut bytes = std::fs::read(&journal).expect("journal bytes");
    bytes.extend_from_slice(&47u32.to_le_bytes()); // length prefix...
    bytes.extend_from_slice(&[0xAB; 10]); // ...but only 10 payload bytes
    std::fs::write(&journal, &bytes).expect("write torn journal");

    let mut store = open_store(&root);
    let got = serve_durable(&cfg, &wl, &mut store, 16).expect("resume over torn tail");
    assert_identical(&got, &want, "torn journal tail");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_checkpoint_is_detected_and_recomputed() {
    let cfg = fleet(Some(hot_chaos(0x0bad)));
    let wl = closed(0x42, 14, 4);
    let want = serve(&cfg, &wl);
    for flip_at_fraction in [0.1f64, 0.5, 0.9] {
        let root = scratch(&format!("ckpt-flip-{}", (flip_at_fraction * 10.0) as u32));
        let (ckpt, _) = interrupted_state(&root, &cfg, &wl, 33);
        let mut bytes = std::fs::read(&ckpt).expect("checkpoint bytes");
        let at = ((bytes.len() as f64) * flip_at_fraction) as usize;
        bytes[at] ^= 0x40;
        std::fs::write(&ckpt, &bytes).expect("write corrupt checkpoint");

        // The CRC frame catches the flip; the point resets and
        // recomputes to the exact reference bytes — no panic, no
        // silently wrong report.
        let mut store = open_store(&root);
        let got = serve_durable(&cfg, &wl, &mut store, 16).expect("recovery from corruption");
        assert_identical(&got, &want, "corrupt checkpoint");
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn tampered_journal_record_diverges_and_recomputes() {
    let cfg = fleet(Some(hot_chaos(0x5afe)));
    let wl = closed(0x64, 14, 4);
    let want = serve(&cfg, &wl);
    let root = scratch("tamper");
    let (_, journal) = interrupted_state(&root, &cfg, &wl, 33);

    // Replace the journal tail with a *valid* CRC frame holding bogus
    // bytes: the CRC scan accepts it, so only replay verification can
    // catch it — as DurableError::Diverged, recovered by recompute.
    let header_len = vip_snap::JOURNAL_HEADER_LEN;
    let mut bytes = std::fs::read(&journal).expect("journal bytes");
    bytes.truncate(header_len);
    bytes.extend_from_slice(&vip_snap::frame(b"not a real scheduler event"));
    std::fs::write(&journal, &bytes).expect("write tampered journal");

    let mut store = open_store(&root);
    let got = serve_durable(&cfg, &wl, &mut store, 16).expect("recovery from divergence");
    assert_identical(&got, &want, "tampered journal record");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn checkpoint_mutation_fuzz_never_panics_and_never_serves_wrong_bytes() {
    let cfg = fleet(Some(hot_chaos(0xf022)));
    let wl = closed(0x08, 14, 4);
    let want = serve(&cfg, &wl);
    let root = scratch("fuzz");
    let (ckpt, journal) = interrupted_state(&root, &cfg, &wl, 33);
    let pristine_ckpt = std::fs::read(&ckpt).expect("checkpoint bytes");
    let pristine_journal = std::fs::read(&journal).expect("journal bytes");

    let mut rng = SplitMix64::new(0xfa22);
    for round in 0..150 {
        // Restore the pristine crash state, then corrupt the
        // checkpoint with 1–4 random byte mutations.
        std::fs::write(&ckpt, &pristine_ckpt).expect("reset checkpoint");
        std::fs::write(&journal, &pristine_journal).expect("reset journal");
        let mut bytes = pristine_ckpt.clone();
        for _ in 0..rng.usize_in(1..5) {
            let at = rng.usize_in(0..bytes.len());
            bytes[at] ^= (rng.next_u64() as u8) | 1;
        }
        std::fs::write(&ckpt, &bytes).expect("write mutated checkpoint");

        // Every mutation must resolve to the reference outcome: the
        // CRC frame rejects the corruption (or replay verification
        // catches the divergence) and the point recomputes.
        let mut store = open_store(&root);
        let got = serve_durable(&cfg, &wl, &mut store, 16)
            .unwrap_or_else(|e| panic!("round {round}: durable run failed: {e}"));
        assert_identical(&got, &want, &format!("fuzz round {round}"));
        // The recompute published a done-record; wipe it so the next
        // round exercises the corrupt-checkpoint path again.
        let dir = run_dir(&root, FP);
        let _ = std::fs::remove_file(dir.join("p0.done"));
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sweep_durable_report_matches_plain_sweep() {
    let root = scratch("sweep");
    let cfg = SweepConfig {
        serve: fleet(None),
        seed: 0xa11ce,
        requests: 10,
        think: 20_000,
        clients: vec![1, 2, 4],
        jobs: 2,
        mix: Workload::small_mix(),
    };
    let plain = run_sweep(&cfg);
    let durable = DurableConfig {
        dir: root.clone(),
        checkpoint_every: 64,
        resume: false,
    };
    let points = run_sweep_durable(&cfg, &durable).expect("durable sweep");
    assert_eq!(
        report_json(&cfg, &points),
        report_json(&cfg, &plain),
        "durable sweep report differs"
    );
    // Resuming a finished sweep replays done-records only.
    let resumed = run_sweep_durable(
        &cfg,
        &DurableConfig {
            resume: true,
            ..durable
        },
    )
    .expect("resumed sweep");
    assert_eq!(report_json(&cfg, &resumed), report_json(&cfg, &plain));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn chaos_sweep_durable_report_matches_plain_sweep() {
    let root = scratch("chaos-sweep");
    let cfg = ChaosSweepConfig {
        serve: fleet(Some(hot_chaos(0xbad5eed))),
        seed: 0xa11ce,
        requests: 10,
        clients: 4,
        think: 20_000,
        scales: vec![0, 100],
        jobs: 2,
        mix: Workload::small_mix(),
    };
    let plain = run_chaos_sweep(&cfg);
    let durable = DurableConfig {
        dir: root.clone(),
        checkpoint_every: 64,
        resume: false,
    };
    let points = run_chaos_sweep_durable(&cfg, &durable).expect("durable chaos sweep");
    assert_eq!(
        chaos_report_json(&cfg, &points),
        chaos_report_json(&cfg, &plain),
        "durable chaos sweep report differs"
    );
    let _ = std::fs::remove_dir_all(&root);
}

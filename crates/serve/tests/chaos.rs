//! Chaos-regime conformance: recovery changes *when* results arrive,
//! never *what* they are — and never costs determinism.
//!
//! Three pillars, mirroring the clean suite in `properties.rs`:
//!
//! * **Determinism**: a chaos run is a pure function of (workload
//!   seed, chaos config) — an identical rerun reproduces every
//!   record, counter, and injected failure; the chaos sweep report is
//!   byte-identical at any `--jobs`.
//! * **Recovery conformance**: every request a chaos run serves —
//!   including failed-then-recovered jobs restored from a periodic
//!   snapshot onto a different device — hashes bit-identically to its
//!   unperturbed twin from a clean run of the same workload, on all
//!   three stepping engines.
//! * **Coverage**: under the default test seeds every injected
//!   failure class actually fires (crashes, induced hangs, machine
//!   checks from fault-poisoned devices), both recovery paths run
//!   (snapshot restore and restage-from-admission), and the policy
//!   edges (deadline timeouts, load shedding, terminal failure)
//!   resolve to their typed statuses.

use std::collections::HashMap;

use vip_rng::for_each_seed;
use vip_serve::{
    chaos_gate, chaos_report_json, run_chaos_sweep, serve, ChaosConfig, ChaosSweepConfig, Engine,
    FailureKind, LoadMode, Rejection, ServeConfig, ServeOutcome, Terminal, Workload,
};

/// A small fleet with slices short enough that every job spans
/// several, so periodic checkpoints and mid-flight failures both land.
fn fleet(engine: Engine, chaos: Option<ChaosConfig>) -> ServeConfig {
    ServeConfig {
        devices: 3,
        queue_depth: 8,
        quantum: 15_000,
        batch_max: 1,
        engine,
        chaos,
        ..ServeConfig::default()
    }
}

/// Chaos rates hot enough that a short run exercises every failure
/// class, with checkpoints every paused slice so snapshot recovery is
/// the common path.
fn hot_chaos(seed: u64) -> ChaosConfig {
    let mut c = ChaosConfig::default_rates(seed);
    c.crash_ppm = 60_000;
    c.hang_ppm = 45_000;
    c.flaky_ppm = 500_000;
    if let Some(dram) = c.faults.dram.as_mut() {
        dram.single_bit_ppm = 100;
        dram.double_bit_ppm = 60;
    }
    c.checkpoint_every = 1;
    c.max_attempts = 6;
    c.retry_backoff = 10_000;
    c.quarantine = 50_000;
    c.probe_pass_ppm = 700_000;
    c
}

fn closed(seed: u64, requests: usize, clients: usize) -> Workload {
    Workload {
        seed,
        requests,
        mode: LoadMode::Closed {
            clients,
            think: 20_000,
        },
        mix: Workload::small_mix(),
    }
}

fn assert_total(outcome: &ServeOutcome) {
    for rec in &outcome.records {
        assert_ne!(
            rec.status,
            Terminal::Pending,
            "request {} has no terminal status",
            rec.id
        );
    }
}

fn assert_identical(a: &ServeOutcome, b: &ServeOutcome) {
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.status, y.status, "request {} diverged", x.id);
        assert_eq!(x.completion, y.completion);
        assert_eq!(x.attempts, y.attempts);
        assert_eq!(x.devices, y.devices);
        assert_eq!(x.result_hash, y.result_hash);
    }
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.chaos, b.chaos);
    assert_eq!(a.device_busy, b.device_busy);
}

#[test]
fn chaos_runs_are_deterministic_and_cover_every_failure_class() {
    let mut sum = vip_serve::ChaosStats::default();
    let mut recovered_snapshot = 0u64;
    let mut recovered_restart = 0u64;
    for_each_seed("serve-chaos", 31, 3, |seed| {
        let cfg = fleet(Engine::Fast, Some(hot_chaos(seed ^ 0xc4a0)));
        let wl = closed(seed, 20, 6);
        let outcome = serve(&cfg, &wl);
        assert_eq!(outcome.records.len(), wl.requests);
        assert_total(&outcome);
        // Rerun-identical: injection is part of the seeded contract.
        let again = serve(&cfg, &wl);
        assert_identical(&outcome, &again);
        for rec in &outcome.records {
            match rec.status {
                Terminal::Recovered { via_snapshot, .. } => {
                    if via_snapshot {
                        recovered_snapshot += 1;
                    } else {
                        recovered_restart += 1;
                    }
                }
                Terminal::Failed { attempts, .. } => {
                    assert!(attempts >= 1);
                }
                _ => {}
            }
        }
        sum.crashes += outcome.chaos.crashes;
        sum.induced_hangs += outcome.chaos.induced_hangs;
        sum.hang_failures += outcome.chaos.hang_failures;
        sum.fault_failures += outcome.chaos.fault_failures;
        sum.job_retries += outcome.chaos.job_retries;
        sum.recoveries_snapshot += outcome.chaos.recoveries_snapshot;
        sum.recoveries_restart += outcome.chaos.recoveries_restart;
        sum.quarantines += outcome.chaos.quarantines;
        sum.probes += outcome.chaos.probes;
    });
    // Every injected failure class, both recovery paths, and the
    // quarantine machinery must actually fire across the seed set —
    // deterministic for the fixed seeds, so not flaky.
    if vip_rng::seed_override().is_none() {
        assert!(sum.crashes > 0, "no seed injected a crash: {sum:?}");
        assert!(sum.induced_hangs > 0, "no seed wedged a slice: {sum:?}");
        assert!(sum.hang_failures > 0, "no hang failure surfaced: {sum:?}");
        assert!(
            sum.fault_failures > 0,
            "no machine check from a fault-poisoned device: {sum:?}"
        );
        assert!(sum.job_retries > 0, "nothing retried: {sum:?}");
        assert!(
            sum.recoveries_snapshot > 0,
            "no snapshot recovery ran: {sum:?}"
        );
        assert!(
            sum.recoveries_restart > 0,
            "no restage recovery ran: {sum:?}"
        );
        assert!(sum.quarantines > 0, "no device was quarantined: {sum:?}");
        assert!(sum.probes > 0, "no health probe ran: {sum:?}");
        assert!(
            recovered_snapshot > 0,
            "no request completed via snapshot recovery"
        );
        assert!(
            recovered_restart > 0,
            "no request completed via restage recovery"
        );
    }
}

#[test]
fn recovered_results_match_unperturbed_twins_on_every_engine() {
    let mut recoveries = 0u64;
    for engine in [Engine::Fast, Engine::Naive, Engine::Functional] {
        let wl = closed(0xf417, 12, 4);
        // The unperturbed twin: same workload, chaos off. batch_max is
        // 1 throughout, so every request of a class computes the same
        // tile over the same inputs — its result hash is the class's.
        let clean = serve(&fleet(engine, None), &wl);
        let mut expected: HashMap<String, u64> = HashMap::new();
        for rec in &clean.records {
            assert_eq!(rec.status, Terminal::Completed);
            let prev = expected.insert(rec.key.clone(), rec.result_hash);
            assert!(
                prev.is_none_or(|h| h == rec.result_hash),
                "clean hashes disagree within class {}",
                rec.key
            );
        }
        let chaotic = serve(&fleet(engine, Some(hot_chaos(0xd15ea5e))), &wl);
        assert_total(&chaotic);
        for rec in &chaotic.records {
            if rec.status.is_served() {
                assert_eq!(
                    rec.result_hash,
                    expected[&rec.key],
                    "{}: request {} ({}) served different bits under chaos \
                     (status {:?}, devices {:?})",
                    engine.label(),
                    rec.id,
                    rec.key,
                    rec.status,
                    rec.devices
                );
            }
            if let Terminal::Recovered { .. } = rec.status {
                recoveries += 1;
            }
        }
    }
    // At least one failed-then-recovered request proved the bit-exact
    // claim somewhere across the three engines.
    assert!(recoveries > 0, "no engine exercised a recovery");
}

#[test]
fn chaos_report_is_jobs_independent_and_gated() {
    let sweep = |jobs: usize| ChaosSweepConfig {
        serve: fleet(Engine::Fast, Some(hot_chaos(0xbad5eed))),
        seed: 0xa11ce,
        requests: 12,
        clients: 4,
        think: 20_000,
        scales: vec![0, 50, 100],
        jobs,
        mix: Workload::small_mix(),
    };
    let serial_cfg = sweep(1);
    let serial = run_chaos_sweep(&serial_cfg);
    let parallel_cfg = sweep(4);
    let parallel = run_chaos_sweep(&parallel_cfg);
    chaos_gate(&serial, 40.0).expect("chaos sweep passes the gate");
    assert_eq!(
        chaos_report_json(&serial_cfg, &serial),
        chaos_report_json(&parallel_cfg, &parallel),
        "chaos report depends on --jobs"
    );
}

#[test]
fn deadline_and_shedding_resolve_to_typed_rejections() {
    // A deadline far shorter than the retry backoff: any job that
    // fails once blows it, and queued work expires under load.
    let mut chaos = hot_chaos(0x7ea);
    chaos.deadline = 120_000;
    chaos.shed_floor_pct = 100; // any quarantine sheds batch work
    chaos.max_attempts = 3;
    let cfg = fleet(Engine::Fast, Some(chaos));
    let wl = Workload {
        seed: 0x7ea,
        requests: 24,
        mode: LoadMode::Closed {
            clients: 8,
            think: 5_000,
        },
        mix: Workload::standard_mix(),
    };
    let outcome = serve(&cfg, &wl);
    assert_total(&outcome);
    let mut timeouts = 0u64;
    let mut shed = 0u64;
    let mut failed = 0u64;
    for rec in &outcome.records {
        match rec.status {
            Terminal::Rejected(Rejection::Timeout { deadline, waited }) => {
                assert_eq!(deadline, 120_000);
                assert!(waited > deadline, "timed out before the deadline");
                timeouts += 1;
            }
            Terminal::Rejected(Rejection::Shed { healthy, devices }) => {
                assert!(healthy < devices);
                shed += 1;
            }
            Terminal::Failed { kind, attempts } => {
                assert!(attempts <= 3, "retry budget exceeded");
                assert!(matches!(kind, FailureKind::Crash | FailureKind::Sim(_)));
                failed += 1;
            }
            _ => {}
        }
    }
    assert_eq!(outcome.chaos.timeouts, timeouts);
    assert_eq!(outcome.chaos.shed, shed);
    assert_eq!(outcome.chaos.failed, failed);
    assert!(
        timeouts > 0,
        "no deadline timeout fired: {:?}",
        outcome.chaos
    );
    assert!(shed > 0, "no load shedding fired: {:?}", outcome.chaos);
}

/// The circuit breaker's strike boundary, pinned exactly: with probes
/// that can never pass and direct decommissions disabled, every
/// quarantined device fails exactly `max_strikes` probes and then
/// opens the breaker — no off-by-one readmission, no early death.
#[test]
fn breaker_opens_after_exactly_max_strikes_failed_probes() {
    let mut chaos = hot_chaos(0x57217e);
    chaos.crash_ppm = 300_000;
    chaos.decommission_ppm = 0; // breaker is the only path to Dead
    chaos.probe_pass_ppm = 0; // probes always fail
    chaos.max_strikes = 3;
    let cfg = fleet(Engine::Fast, Some(chaos));
    let outcome = serve(&cfg, &closed(0x57217e, 20, 6));
    assert_total(&outcome);
    let c = &outcome.chaos;
    assert!(c.quarantines > 0, "no device was quarantined: {c:?}");
    // One quarantine episode per device: with no passing probe a
    // quarantined device never rejoins the fleet.
    assert_eq!(c.quarantines, c.decommissions, "{c:?}");
    assert_eq!(c.probes, c.probe_failures, "a probe passed at 0 ppm");
    assert_eq!(
        c.probe_failures,
        3 * c.decommissions,
        "strike boundary missed: {c:?}"
    );
}

/// The opposite boundary: probes that always pass readmit every
/// quarantined device on its first probe (strikes reset, breaker never
/// opens), so the fleet survives an arbitrary quarantine churn.
#[test]
fn perfect_probes_readmit_on_first_attempt() {
    let mut chaos = hot_chaos(0x4ead);
    chaos.crash_ppm = 300_000;
    chaos.decommission_ppm = 0;
    chaos.probe_pass_ppm = vip_faults::PPM_SCALE as u32;
    let cfg = fleet(Engine::Fast, Some(chaos));
    let outcome = serve(&cfg, &closed(0x4ead, 20, 6));
    assert_total(&outcome);
    let c = &outcome.chaos;
    assert!(c.quarantines > 0, "no device was quarantined: {c:?}");
    assert_eq!(c.probes, c.quarantines, "a readmission took >1 probe");
    assert_eq!(c.probe_failures, 0, "{c:?}");
    assert_eq!(c.decommissions, 0, "{c:?}");
    assert!(
        outcome.records.iter().any(|r| r.status.is_served()),
        "readmitted fleet served nothing"
    );
}

/// Losing every device at once must not wedge or drop work: with two
/// devices and near-certain slice crashes, the whole fleet cycles
/// through quarantine (often simultaneously), yet every request still
/// reaches a typed terminal status and the backoff eventually serves.
#[test]
fn whole_fleet_quarantine_backs_off_and_recovers() {
    let mut chaos = hot_chaos(0xa11);
    chaos.crash_ppm = 900_000;
    chaos.decommission_ppm = 0;
    chaos.probe_pass_ppm = vip_faults::PPM_SCALE as u32;
    let cfg = ServeConfig {
        devices: 2,
        ..fleet(Engine::Fast, Some(chaos))
    };
    let outcome = serve(&cfg, &closed(0xa11, 16, 5));
    assert_total(&outcome);
    let c = &outcome.chaos;
    assert!(
        c.quarantines >= 2,
        "both devices should have cycled through quarantine: {c:?}"
    );
    assert_eq!(c.decommissions, 0, "{c:?}");
    // Rerun-identical even at the saturation edge.
    assert_identical(&outcome, &serve(&cfg, &closed(0xa11, 16, 5)));
}

/// Deadline expiry racing successful recovery: with a deadline a few
/// retry-backoffs wide, some failed jobs recover in time and some blow
/// the deadline mid-recovery. Both outcomes must appear across the
/// seed set, and a timeout must never fire early.
#[test]
fn deadline_races_recovery_both_ways() {
    let mut raced_recoveries = 0u64;
    let mut raced_timeouts = 0u64;
    for_each_seed("serve-deadline-race", 0xace, 4, |seed| {
        let mut chaos = hot_chaos(seed ^ 0xd11e);
        chaos.deadline = 300_000;
        chaos.max_attempts = 6;
        let cfg = fleet(Engine::Fast, Some(chaos));
        let outcome = serve(&cfg, &closed(seed, 20, 8));
        assert_total(&outcome);
        for rec in &outcome.records {
            match rec.status {
                Terminal::Rejected(Rejection::Timeout { deadline, waited }) => {
                    assert_eq!(deadline, 300_000);
                    assert!(waited > deadline, "timed out before the deadline");
                    raced_timeouts += 1;
                }
                Terminal::Recovered { .. } => raced_recoveries += 1,
                _ => {}
            }
        }
    });
    if vip_rng::seed_override().is_none() {
        assert!(
            raced_recoveries > 0,
            "no failed job recovered inside the deadline"
        );
        assert!(
            raced_timeouts > 0,
            "no failed job blew the deadline mid-recovery"
        );
    }
}

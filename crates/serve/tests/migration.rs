//! Preempt-via-snapshot migration conformance.
//!
//! For every tile class and every stepping engine: running a request
//! straight to completion on device A must be architecturally
//! indistinguishable from preempting it mid-flight, snapshotting,
//! restoring the snapshot onto a fresh device B, and finishing there.
//! The exact engines (fast, naive) must also agree on total cycles
//! and on the full final snapshot bytes; the functional engine
//! guarantees bit-identical architectural results but only estimated
//! cycles (restore resets its calibration), so it is held to the
//! results bar alone.

use vip_core::{RunOutcome, System, SystemConfig};
use vip_mem::MemConfig;
use vip_serve::{Engine, ProgramCache, TileClass};

/// Tiles big enough that even the functional engine — whose minimum
/// pause granularity is one ~9k-cycle calibration window — can be
/// caught mid-flight.
fn classes() -> Vec<TileClass> {
    vec![
        TileClass::Mlp {
            inputs: 2048,
            outputs: 64,
        },
        TileClass::Cnn {
            in_channels: 16,
            out_channels: 16,
            filters_per_group: 8,
        },
        TileClass::Bp {
            width: 32,
            height: 32,
            labels: 16,
            iters: 1,
        },
    ]
}

struct Finished {
    blobs: Vec<Vec<u8>>,
    cycles: u64,
    snapshot: Vec<u8>,
}

/// Runs `class` straight to quiescence on one device.
fn run_straight(engine: Engine, class: TileClass, cfg: &SystemConfig) -> Finished {
    let cache = ProgramCache::new();
    let dir = std::env::temp_dir().join("vip-serve-missing-schedules");
    let mut staged = class.stage(cfg, 1, &dir, &cache);
    staged.load_programs();
    let out = engine
        .advance(&mut staged.sys, staged.limit, staged.limit)
        .expect("tile completes");
    assert!(matches!(out, RunOutcome::Quiesced(_)));
    Finished {
        blobs: staged.reader.read(staged.sys.hmc()),
        cycles: staged.sys.now(),
        snapshot: staged.sys.save_snapshot(),
    }
}

/// Runs `class` to (at least) `pause_at` cycles on device A, parks it
/// as a snapshot, restores onto a brand-new device B, and finishes.
/// Returns `None` if the tile quiesced before it could be preempted
/// (the functional engine pauses loosely and may drain right past a
/// late pause point).
fn run_migrated(
    engine: Engine,
    class: TileClass,
    cfg: &SystemConfig,
    pause_at: u64,
) -> Option<Finished> {
    let cache = ProgramCache::new();
    let dir = std::env::temp_dir().join("vip-serve-missing-schedules");
    let mut staged = class.stage(cfg, 1, &dir, &cache);
    staged.load_programs();
    let out = engine
        .advance(&mut staged.sys, pause_at, staged.limit)
        .expect("first slice runs");
    if !matches!(out, RunOutcome::Paused(_)) {
        return None;
    }
    let parked = staged.sys.save_snapshot();

    // Device B: a different System instance entirely, same structural
    // configuration — exactly what the fleet scheduler does.
    let mut dev_b = System::new(cfg.clone());
    dev_b
        .restore_snapshot(&parked)
        .expect("same fingerprint restores");
    let out = engine
        .advance(&mut dev_b, staged.limit, staged.limit)
        .expect("tile completes after migration");
    assert!(matches!(out, RunOutcome::Quiesced(_)));
    Some(Finished {
        blobs: staged.reader.read(dev_b.hmc()),
        cycles: dev_b.now(),
        snapshot: dev_b.save_snapshot(),
    })
}

#[test]
fn migration_preserves_results_on_every_engine() {
    let cfg = SystemConfig::single_vault(MemConfig::baseline());
    for class in classes() {
        let mut results: Vec<Vec<Vec<u8>>> = Vec::new();
        for engine in [Engine::Fast, Engine::Naive, Engine::Functional] {
            let straight = run_straight(engine, class, &cfg);
            assert!(straight.cycles > 1, "{class:?} finished immediately");
            // Find a pause point genuinely inside this engine's run —
            // successively earlier fractions, since the functional
            // engine's loose pause can drain straight past a late one.
            let migrated = [2, 4, 8, 16]
                .iter()
                .find_map(|div| run_migrated(engine, class, &cfg, straight.cycles / div))
                .unwrap_or_else(|| {
                    panic!(
                        "{class:?}/{}: no pause point landed mid-tile",
                        engine.label()
                    )
                });
            // Architectural results are bit-identical with and without
            // the mid-flight migration, on every engine.
            assert_eq!(
                straight.blobs,
                migrated.blobs,
                "{class:?}/{}: migration changed the results",
                engine.label()
            );
            // The exact engines also agree on timing and on the entire
            // final machine state.
            if engine != Engine::Functional {
                assert_eq!(
                    straight.cycles,
                    migrated.cycles,
                    "{class:?}/{}: migration changed the cycle count",
                    engine.label()
                );
                assert_eq!(
                    straight.snapshot,
                    migrated.snapshot,
                    "{class:?}/{}: migration changed final machine state",
                    engine.label()
                );
            }
            results.push(straight.blobs);
        }
        // All three engines produce the same architectural results.
        assert_eq!(results[0], results[1], "{class:?}: fast vs naive differ");
        assert_eq!(
            results[0], results[2],
            "{class:?}: fast vs functional differ"
        );
    }
}

//! Property tests for the serving scheduler's invariants, seeded
//! through `vip_rng::for_each_seed` (override with `VIP_TEST_SEED`).
//!
//! Per seed: no request is lost or double-completed, FIFO order holds
//! within a priority class, the admission bound is never exceeded,
//! and the whole outcome — records, counters, report bytes — is a
//! pure function of (seed, config), independent of sweep `jobs`.

use vip_rng::for_each_seed;
use vip_serve::{
    gate, report_json, run_sweep, serve, ChaosStats, LoadMode, Rejection, ServeConfig,
    ServeOutcome, SweepConfig, Terminal, Workload,
};

fn small_serve_config() -> ServeConfig {
    ServeConfig {
        devices: 2,
        queue_depth: 4,
        quantum: 50_000,
        batch_max: 4,
        ..ServeConfig::default()
    }
}

fn closed_workload(seed: u64, requests: usize, clients: usize) -> Workload {
    Workload {
        seed,
        requests,
        mode: LoadMode::Closed {
            clients,
            think: 20_000,
        },
        mix: Workload::small_mix(),
    }
}

/// The invariants every run must satisfy, regardless of mode.
fn check_invariants(cfg: &ServeConfig, outcome: &ServeOutcome) {
    // Records are dense in id order: request id n is records[n] —
    // nothing lost, nothing duplicated.
    for (i, rec) in outcome.records.iter().enumerate() {
        assert_eq!(rec.id as usize, i, "records must be dense in id order");
        // A completed request has a coherent timeline.
        if let Some(done) = rec.completion {
            let dispatch = rec.dispatch.expect("completed requests were dispatched");
            assert!(rec.arrival <= dispatch, "dispatch precedes arrival");
            assert!(dispatch <= done, "completion precedes dispatch");
            assert!(rec.rejection.is_none(), "completed yet terminally rejected");
            assert!(rec.batch >= 1 && rec.batch <= cfg.batch_max);
        }
        // A terminally rejected request never produced results; one
        // refused at admission (queue-full, shed) never even ran. A
        // deadline timeout may have dispatched — and failed — before
        // its retry budget met the deadline.
        if rec.rejection.is_some() {
            assert!(rec.completion.is_none());
            if matches!(
                rec.rejection,
                Some(Rejection::QueueFull { .. } | Rejection::Shed { .. })
            ) {
                assert!(rec.dispatch.is_none());
            }
        }
        // Terminal-status totality and coherence: every record ends in
        // exactly one typed status, agreeing with the legacy fields.
        match rec.status {
            Terminal::Pending => panic!("request {} ended without a terminal status", rec.id),
            Terminal::Completed => {
                assert!(rec.completion.is_some());
                assert_eq!(rec.attempts, 1, "unfailed request consumed retries");
            }
            Terminal::Recovered {
                attempts,
                via_snapshot: _,
            } => {
                assert!(rec.completion.is_some());
                assert!(attempts >= 2, "recovered implies a failed attempt");
                assert_eq!(rec.attempts, attempts);
            }
            Terminal::Rejected(r) => {
                assert_eq!(rec.rejection, Some(r));
                assert!(rec.completion.is_none());
            }
            Terminal::Failed { attempts, .. } => {
                assert!(attempts >= 1, "a job cannot fail before dispatching");
                assert!(rec.dispatch.is_some());
                assert!(rec.completion.is_none() && rec.rejection.is_none());
            }
        }
        assert_eq!(rec.status.is_served(), rec.completion.is_some());
        // The device trail exists exactly when the request ran.
        assert_eq!(rec.devices.is_empty(), rec.dispatch.is_none());
        if let Some(d) = rec.device {
            assert_eq!(rec.devices.last(), Some(&d));
        }
    }
    // A clean fleet injects nothing and recovers nothing.
    if cfg.chaos.is_none() {
        assert_eq!(outcome.chaos, ChaosStats::default());
    }
    // The admission bound: no per-class high-water mark ever exceeded
    // the shared bound. (The scheduler itself hard-asserts the
    // combined occupancy after every admission, so running at all
    // proves the instantaneous bound; the per-class maxima here are
    // observed at different instants and only individually bounded.)
    assert!(
        outcome.max_queue_depth[0].max(outcome.max_queue_depth[1]) <= cfg.queue_depth,
        "queue depth high-water {:?} exceeds bound {}",
        outcome.max_queue_depth,
        cfg.queue_depth
    );
    // FIFO fairness within a priority class, stream by stream:
    // batching may lift a compatible group past requests of another
    // key, but two requests of the same priority and key must dispatch
    // in arrival order.
    let mut dispatched: Vec<_> = outcome
        .records
        .iter()
        .filter(|r| r.dispatch.is_some())
        .collect();
    dispatched.sort_by_key(|r| (r.arrival, r.id));
    for a in 0..dispatched.len() {
        for b in a + 1..dispatched.len() {
            let (x, y) = (dispatched[a], dispatched[b]);
            if x.priority == y.priority && x.key == y.key {
                assert!(
                    x.dispatch <= y.dispatch,
                    "requests {} and {} of one stream dispatched out of arrival order",
                    x.id,
                    y.id
                );
            }
        }
    }
    // Device accounting is coherent.
    assert_eq!(outcome.device_busy.len(), cfg.devices);
    for busy in &outcome.device_busy {
        assert!(*busy <= outcome.makespan, "a device was busy past the end");
    }
    assert!(outcome.batches <= outcome.dispatches);
}

fn assert_outcomes_identical(a: &ServeOutcome, b: &ServeOutcome) {
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.arrival, y.arrival);
        assert_eq!(x.dispatch, y.dispatch);
        assert_eq!(x.completion, y.completion);
        assert_eq!(x.device, y.device);
        assert_eq!(x.batch, y.batch);
        assert_eq!(x.migrations, y.migrations);
        assert_eq!(x.retries, y.retries);
        assert_eq!(x.result_hash, y.result_hash);
        assert_eq!(x.status, y.status);
        assert_eq!(x.attempts, y.attempts);
        assert_eq!(x.devices, y.devices);
    }
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.preemptions, b.preemptions);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.dispatches, b.dispatches);
    assert_eq!(a.rejections, b.rejections);
    assert_eq!(a.device_busy, b.device_busy);
    assert_eq!(a.chaos, b.chaos);
}

#[test]
fn closed_loop_invariants_hold_across_seeds() {
    let cfg = small_serve_config();
    let mut total_preemptions = 0u64;
    let mut total_migrations = 0u64;
    let mut total_batches = 0u64;
    let mut total_retries = 0u64;
    for_each_seed("serve-closed", 11, 5, |seed| {
        // More clients than queue slots + devices, so admission
        // rejections (and retries) actually happen.
        let wl = closed_workload(seed, 24, 8);
        let outcome = serve(&cfg, &wl);
        check_invariants(&cfg, &outcome);
        // Closed loop: every issued request eventually completes.
        assert_eq!(outcome.records.len(), wl.requests);
        for rec in &outcome.records {
            assert!(
                rec.completion.is_some(),
                "closed-loop request {} never completed",
                rec.id
            );
            assert_ne!(rec.result_hash, 0, "request {} has no result", rec.id);
        }
        // Determinism: an identical rerun reproduces every field.
        let again = serve(&cfg, &wl);
        assert_outcomes_identical(&outcome, &again);
        total_preemptions += outcome.preemptions;
        total_migrations += outcome.migrations;
        total_batches += outcome.batches;
        total_retries += outcome
            .records
            .iter()
            .map(|r| u64::from(r.retries))
            .sum::<u64>();
    });
    // The interesting machinery must actually fire somewhere across
    // the seed set, or the invariants above prove nothing about it.
    // (Seeds are fixed, so these are deterministic, not flaky.)
    if vip_rng::seed_override().is_none() {
        assert!(total_preemptions > 0, "no seed exercised preemption");
        assert!(total_migrations > 0, "no seed exercised migration");
        assert!(total_batches > 0, "no seed exercised batching");
        assert!(total_retries > 0, "no seed exercised admission retry");
    }
}

#[test]
fn open_loop_accounts_for_every_arrival() {
    let cfg = small_serve_config();
    for_each_seed("serve-open", 23, 3, |seed| {
        // A tight arrival gap overwhelms the small queue, forcing
        // terminal rejections.
        let wl = Workload {
            seed,
            requests: 24,
            mode: LoadMode::Open { mean_gap: 10_000 },
            mix: Workload::small_mix(),
        };
        let outcome = serve(&cfg, &wl);
        check_invariants(&cfg, &outcome);
        assert_eq!(outcome.records.len(), wl.requests);
        let completed = outcome
            .records
            .iter()
            .filter(|r| r.completion.is_some())
            .count();
        let rejected = outcome
            .records
            .iter()
            .filter(|r| r.rejection.is_some())
            .count();
        // Every issued request either completed or was terminally
        // rejected — nothing lost in between.
        assert_eq!(completed + rejected, wl.requests);
        assert_eq!(outcome.rejections as usize, rejected);
    });
}

#[test]
fn sweep_report_is_jobs_independent() {
    let sweep = |jobs: usize| SweepConfig {
        serve: small_serve_config(),
        seed: 0xa11ce,
        requests: 10,
        think: 20_000,
        clients: vec![1, 4],
        jobs,
        mix: Workload::small_mix(),
    };
    let serial_cfg = sweep(1);
    let serial = run_sweep(&serial_cfg);
    let parallel_cfg = sweep(4);
    let parallel = run_sweep(&parallel_cfg);
    gate(&serial, serial_cfg.requests).expect("serial sweep passes the gate");
    // Same seed + same config ⇒ byte-identical report at any --jobs.
    assert_eq!(
        report_json(&serial_cfg, &serial),
        report_json(&parallel_cfg, &parallel)
    );
}

//! Seeded SplitMix64 pseudo-random numbers.
//!
//! The simulator and its tests need *reproducible* pseudo-random data —
//! synthetic stereo pairs, randomized instruction streams, traffic
//! patterns — in an offline build with no external crates. SplitMix64
//! (Steele, Lea & Flood, OOPSLA 2014) is the standard tiny generator
//! for this: one u64 of state, two multiplies and three xor-shifts per
//! output, full 2^64 period, and it passes BigCrush. It is **not**
//! cryptographic and range sampling uses plain modulo (the bias at
//! these range sizes is far below anything the tests can observe).

#![forbid(unsafe_code)]

use core::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal
    /// sequences on every platform.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The current internal state. `SplitMix64::new(rng.state())`
    /// resumes the stream exactly where `rng` left off, which is how
    /// checkpoints serialize RNG cursors.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }

    /// A uniform `usize` in a half-open range.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// A uniform `i64` in a half-open range.
    pub fn i64_in(&mut self, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.below(span) as i64)
    }

    /// A uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `len` pseudo-random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

/// The seed override from the `VIP_TEST_SEED` environment variable, if
/// set — decimal or `0x`-prefixed hex.
///
/// Randomized tests honor this to re-run exactly one failing seed:
///
/// ```text
/// VIP_TEST_SEED=0x5ca1a7 cargo test -p vip-ref differential
/// ```
///
/// # Panics
///
/// Panics if the variable is set but does not parse as a `u64`.
#[must_use]
pub fn seed_override() -> Option<u64> {
    let raw = std::env::var("VIP_TEST_SEED").ok()?;
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(e) => panic!("VIP_TEST_SEED={raw:?} is not a u64: {e}"),
    }
}

/// Runs `f` once per seed in `base..base + count`, printing the seed and
/// a repro command before re-raising any panic.
///
/// This is the driver every `random_*` test uses: on failure the output
/// names the exact seed and the `VIP_TEST_SEED` incantation that re-runs
/// only that case. When `VIP_TEST_SEED` is set, only that single seed
/// runs (regardless of `base`/`count`), so a repro exercises exactly the
/// failing program.
///
/// # Panics
///
/// Re-raises the panic from `f`, after printing the seed.
pub fn for_each_seed<F: FnMut(u64)>(label: &str, base: u64, count: u64, mut f: F) {
    if let Some(seed) = seed_override() {
        eprintln!("{label}: VIP_TEST_SEED override, running only seed {seed:#x}");
        f(seed);
        return;
    }
    for seed in base..base.wrapping_add(count) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(seed))) {
            eprintln!("{label}: FAILED at seed {seed:#x}");
            eprintln!("    repro: VIP_TEST_SEED={seed:#x} cargo test {label}");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence() {
        // First outputs for seed 0, cross-checked against the published
        // SplitMix64 reference implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(rng.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let u = rng.usize_in(3..17);
            assert!((3..17).contains(&u));
            let i = rng.i64_in(-8..9);
            assert!((-8..9).contains(&i));
            assert!(rng.below(5) < 5);
        }
    }

    #[test]
    fn for_each_seed_visits_the_whole_range() {
        if std::env::var("VIP_TEST_SEED").is_ok() {
            return; // the override narrows the range by design
        }
        let mut seen = Vec::new();
        for_each_seed("rng_smoke", 10, 3, |s| seen.push(s));
        assert_eq!(seen, vec![10, 11, 12]);
    }

    #[test]
    fn output_is_spread() {
        // Sanity: 1000 draws over 16 buckets hit every bucket.
        let mut rng = SplitMix64::new(1);
        let mut hits = [0u32; 16];
        for _ in 0..1000 {
            hits[rng.below(16) as usize] += 1;
        }
        assert!(hits.iter().all(|&h| h > 0));
    }
}

//! The vault controller: transaction queueing, FR-FCFS command
//! scheduling, refresh, and full-empty atomics.

use std::collections::VecDeque;

use crate::addr::DecodedAddr;
use crate::bank::Bank;
use crate::config::{MemConfig, RowPolicy};
use crate::req::{MemRequest, MemResponse, QueueFullError, RequestKind};
use crate::stats::MemStats;
use crate::storage::Storage;
use crate::timing::BASELINE_T_REFI_PS;
use crate::Cycle;
use vip_faults::secded::Decoded;
use vip_faults::{fault_roll, fault_value, FaultDomain};
use vip_snap::{Reader, SnapError, Snapshot, Writer};

#[derive(Debug)]
struct Txn {
    req: MemRequest,
    decoded: DecodedAddr,
    enqueued: Cycle,
    caused_act: bool,
}

impl Snapshot for Txn {
    fn save(&self, w: &mut Writer) {
        self.req.save(w);
        self.decoded.save(w);
        w.u64(self.enqueued);
        w.bool(self.caused_act);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Txn {
            req: MemRequest::restore(r)?,
            decoded: DecodedAddr::restore(r)?,
            enqueued: r.u64()?,
            caused_act: r.bool()?,
        })
    }
}

#[derive(Debug)]
struct PendingCompletion {
    at: Cycle,
    response: MemResponse,
    latency: Cycle,
}

impl Snapshot for PendingCompletion {
    fn save(&self, w: &mut Writer) {
        w.u64(self.at);
        self.response.save(w);
        w.u64(self.latency);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(PendingCompletion {
            at: r.u64()?,
            response: MemResponse::restore(r)?,
            latency: r.u64()?,
        })
    }
}

/// Cycle-level model of one HMC vault: a transaction queue in front of 16
/// independently-controlled banks sharing one 10 GB/s data path.
///
/// Scheduling is first-ready, first-come-first-served (FR-FCFS): the
/// oldest transaction whose row is open issues first; otherwise the
/// controller works on opening the oldest transaction's row, precharging
/// a conflicting row if necessary. One command issues per cycle. Refresh
/// fires every tREFI and stalls the whole vault for tRFC (all-bank
/// refresh, as in the HMC). Under the closed-page policy every column
/// command carries auto-precharge.
///
/// Full-empty transactions ([`RequestKind::FeLoad`]/[`RequestKind::FeStore`]) wait in
/// the queue until the word's full bit permits, then issue like a normal
/// column access; because command issue is serialized per vault the
/// test-and-update is atomic (§IV-A's synchronization variables).
#[derive(Debug)]
pub struct VaultController {
    vault: usize,
    cfg: MemConfig,
    banks: Vec<Bank>,
    queue: VecDeque<Txn>,
    completions: Vec<PendingCompletion>,
    now: Cycle,
    next_refresh: Cycle,
    refresh_pending: bool,
    refresh_until: Cycle,
    bus_free_at: Cycle,
    stats: MemStats,
}

impl VaultController {
    /// Creates the controller for `vault` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MemConfig::validate`].
    #[must_use]
    pub fn new(vault: usize, cfg: MemConfig) -> Self {
        cfg.validate().expect("valid memory configuration");
        let banks = vec![Bank::new(); cfg.banks_per_vault];
        let next_refresh = cfg.timing.t_refi();
        VaultController {
            vault,
            cfg,
            banks,
            queue: VecDeque::new(),
            completions: Vec::new(),
            now: 0,
            next_refresh,
            refresh_pending: false,
            refresh_until: 0,
            bus_free_at: 0,
            stats: MemStats::default(),
        }
    }

    /// The vault index.
    #[must_use]
    pub fn vault(&self) -> usize {
        self.vault
    }

    /// Number of queued (unissued) transactions.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Wires (or removes) retention-fault injection at runtime.
    pub fn set_faults(&mut self, faults: Option<vip_faults::DramFaultConfig>) {
        self.cfg.faults = faults;
    }

    /// Whether the transaction queue can accept another request.
    #[must_use]
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.cfg.trans_queue_depth
    }

    /// Whether no work is queued or in flight.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.completions.is_empty()
    }

    /// Statistics snapshot (with `elapsed_cycles` set to the current
    /// cycle).
    #[must_use]
    pub fn stats(&self) -> MemStats {
        MemStats {
            elapsed_cycles: self.now,
            ..self.stats
        }
    }

    /// Enqueues a transaction.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] if the transaction queue is full (the
    /// caller retries next cycle — this is the back-pressure the NoC
    /// sees).
    ///
    /// # Panics
    ///
    /// Panics if the request crosses a column boundary or targets a
    /// different vault (the load-store unit splits requests into columns
    /// and the network routes them, so either is a simulator bug).
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(), QueueFullError> {
        if !self.can_accept() {
            return Err(QueueFullError { vault: self.vault });
        }
        let len = if req.kind == RequestKind::Write {
            req.data.len()
        } else {
            req.len
        };
        let granule = self.cfg.request_granule() as u64;
        assert!(
            (req.addr % granule) + len as u64 <= granule,
            "request at {:#x} len {} crosses a {}-byte request granule (HMC packets \
             carry at most 128 B and never cross a DRAM row)",
            req.addr,
            len,
            granule
        );
        let decoded = self.cfg.mapping.decode(&self.cfg, req.addr);
        assert_eq!(
            decoded.vault, self.vault,
            "request at {:#x} routed to vault {} but maps to vault {}",
            req.addr, self.vault, decoded.vault
        );
        self.queue.push_back(Txn {
            req,
            decoded,
            enqueued: self.now,
            caused_act: false,
        });
        Ok(())
    }

    /// Advances one cycle: retires matured completions into `out`, then
    /// issues at most one DRAM command.
    pub fn tick(&mut self, storage: &mut Storage, out: &mut Vec<MemResponse>) {
        self.now += 1;
        if !self.queue.is_empty() || !self.completions.is_empty() {
            self.stats.busy_cycles += 1;
        }

        // Retire matured completions.
        let now = self.now;
        let mut i = 0;
        while i < self.completions.len() {
            if self.completions[i].at <= now {
                let done = self.completions.swap_remove(i);
                self.stats.total_latency_cycles += done.latency;
                match done.response.kind {
                    RequestKind::Read | RequestKind::FeLoad => {
                        self.stats.reads += 1;
                        self.stats.bytes_read += done.response.data.len() as u64;
                    }
                    RequestKind::Write | RequestKind::FeStore => {
                        self.stats.writes += 1;
                    }
                }
                out.push(done.response);
            } else {
                i += 1;
            }
        }

        // Refresh in progress: the whole vault is blocked.
        if self.now < self.refresh_until {
            return;
        }
        if self.now >= self.next_refresh {
            self.refresh_pending = true;
        }
        if self.refresh_pending {
            if self.try_start_refresh() {
                return;
            }
            // Work toward refresh: precharge one open bank if possible.
            if self.issue_precharge_for_refresh() {
                return;
            }
            // Fall through: banks are draining tRAS/tWR; nothing else may
            // issue so the refresh starts promptly.
            return;
        }

        self.schedule(storage);
    }

    /// A sound lower bound on the next cycle at which this vault can do
    /// anything: retire a completion, make refresh progress, or issue a
    /// DRAM command. Returns `None` only when the vault will never act
    /// again without new input — which cannot happen here, because
    /// refresh fires unconditionally every tREFI, so the result is
    /// always `Some`.
    ///
    /// "Sound lower bound" means the vault is guaranteed idle on every
    /// cycle in `(now, next_event)`; waking early is harmless (the tick
    /// is a no-op), waking late would change simulated behaviour. The
    /// estimate deliberately over-approximates readiness: it ignores the
    /// one-command-per-cycle limit and the FR-FCFS older-conflict rule,
    /// both of which only make a candidate cycle *early*, never late.
    #[must_use]
    pub fn next_event(&self, storage: &Storage) -> Option<Cycle> {
        let now = self.now;
        let mut next: Option<Cycle> = None;
        let mut consider = |c: Cycle| {
            let c = c.max(now + 1);
            next = Some(next.map_or(c, |n: Cycle| n.min(c)));
        };
        // Completions retire when their cycle matures, even mid-refresh.
        for done in &self.completions {
            consider(done.at);
        }
        if now < self.refresh_until {
            // The whole vault is blocked; nothing issues earlier.
            consider(self.refresh_until);
        } else if self.refresh_pending {
            // Working toward refresh: one precharge per cycle, or
            // waiting out tRAS/tWR. The window is tightly bounded, so
            // step through it.
            consider(now + 1);
        } else {
            // Refresh fires every tREFI regardless of load (the counter
            // must match a cycle-by-cycle run exactly).
            consider(self.next_refresh);
            for txn in &self.queue {
                if !self.fe_permits(storage, &txn.req) {
                    // Blocked on the full-empty bit. Only a column issued
                    // by this vault (the partner transaction, which has
                    // its own candidate below) or the host can flip it,
                    // so this transaction contributes no event. Exactly
                    // one side of a load/store pair is permitted at any
                    // time, so the pair always produces a candidate.
                    continue;
                }
                let bank = &self.banks[txn.decoded.bank];
                consider(match bank.open_row() {
                    Some(row) if row == txn.decoded.row => bank.earliest_column(),
                    Some(_) => bank.earliest_precharge(),
                    None => bank.earliest_activate(),
                });
            }
        }
        next
    }

    /// Jumps the vault's clock to `to`, replaying the per-cycle counters
    /// that `to - now` idle ticks would have accumulated. Callers must
    /// have established (via [`next_event`](Self::next_event)) that every
    /// skipped cycle is a no-op; the queue/completion occupancy is
    /// constant across such a window, so the busy-cycle counter advances
    /// linearly.
    pub fn skip_to(&mut self, to: Cycle) {
        debug_assert!(to >= self.now);
        if !self.queue.is_empty() || !self.completions.is_empty() {
            self.stats.busy_cycles += to - self.now;
        }
        self.now = to;
    }

    /// Jumps an *idle* vault's clock far forward, crediting the
    /// refreshes that would have fired on schedule during the span
    /// instead of performing them late. The functional execution tier
    /// uses this when it retires a stretch of untimed work: unlike
    /// [`skip_to`](Self::skip_to), the jump may cross any number of
    /// tREFI boundaries, and the vault comes out with its refresh
    /// schedule aligned to the new clock (no catch-up refresh burst
    /// distorting the next timing window).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vault still has queued or
    /// in-flight work — idle means idle.
    pub fn advance_idle(&mut self, to: Cycle) {
        debug_assert!(self.queue.is_empty() && self.completions.is_empty());
        if to <= self.now {
            return;
        }
        self.now = to;
        self.refresh_pending = false;
        let refi = self.cfg.timing.t_refi();
        while self.next_refresh <= to {
            self.next_refresh += refi;
            self.stats.refreshes += 1;
        }
        // Any refresh that was mid-flight completed within the span.
        self.refresh_until = self.refresh_until.min(to);
    }

    /// Serializes every piece of mutable controller state: bank state
    /// machines, the transaction queue, pending completions (in their
    /// exact in-memory order — retirement uses `swap_remove`, so the
    /// order is architecturally significant), the refresh machinery,
    /// the shared-bus reservation, counters, and the runtime-settable
    /// fault configuration.
    pub fn save_state(&self, w: &mut Writer) {
        self.banks.save(w);
        self.queue.save(w);
        self.completions.save(w);
        w.u64(self.now);
        w.u64(self.next_refresh);
        w.bool(self.refresh_pending);
        w.u64(self.refresh_until);
        w.u64(self.bus_free_at);
        self.stats.save(w);
        self.cfg.faults.save(w);
    }

    /// Restores state saved by [`save_state`](Self::save_state) onto a
    /// controller freshly built with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on decode failure or if the snapshot's
    /// bank count disagrees with this controller's geometry.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        let banks = Vec::<Bank>::restore(r)?;
        if banks.len() != self.banks.len() {
            return Err(SnapError::Corrupt("bank count mismatch"));
        }
        self.banks = banks;
        self.queue = VecDeque::restore(r)?;
        self.completions = Vec::restore(r)?;
        self.now = r.u64()?;
        self.next_refresh = r.u64()?;
        self.refresh_pending = r.bool()?;
        self.refresh_until = r.u64()?;
        self.bus_free_at = r.u64()?;
        self.stats = MemStats::restore(r)?;
        self.cfg.faults = Option::restore(r)?;
        Ok(())
    }

    fn try_start_refresh(&mut self) -> bool {
        let now = self.now;
        if self.banks.iter().all(|b| b.refresh_ready(now)) {
            let until = now + self.cfg.timing.t_rfc();
            for bank in &mut self.banks {
                bank.block_until(until);
            }
            self.refresh_until = until;
            self.next_refresh += self.cfg.timing.t_refi();
            self.refresh_pending = false;
            self.stats.refreshes += 1;
            true
        } else {
            false
        }
    }

    fn issue_precharge_for_refresh(&mut self) -> bool {
        let now = self.now;
        let timing = self.cfg.timing;
        for bank in &mut self.banks {
            if bank.can_precharge(now) {
                bank.precharge(now, &timing);
                return true;
            }
        }
        false
    }

    /// Whether an older queued transaction touches an overlapping
    /// address range. Plain transactions must not reorder around each
    /// other when they overlap (RAW/WAR/WAW through DRAM); full-empty
    /// transactions are exempt — their ordering comes from the full bit
    /// itself, and blocking on them would deadlock producer-consumer
    /// pairs that share a word by design.
    fn has_older_conflict(&self, idx: usize) -> bool {
        let txn = &self.queue[idx];
        if txn.req.is_full_empty() {
            return false;
        }
        let len = if txn.req.kind == RequestKind::Write {
            txn.req.data.len()
        } else {
            txn.req.len
        } as u64;
        let (start, end) = (txn.req.addr, txn.req.addr + len);
        self.queue.iter().take(idx).any(|older| {
            if older.req.is_full_empty() {
                return false;
            }
            let olen = if older.req.kind == RequestKind::Write {
                older.req.data.len()
            } else {
                older.req.len
            } as u64;
            start < older.req.addr + olen && older.req.addr < end
        })
    }

    /// FR-FCFS: issue a ready column command, else open the oldest
    /// transaction's row.
    fn schedule(&mut self, storage: &mut Storage) {
        // Pass 1: oldest row-hit transaction whose bank and bus are ready.
        let now = self.now;
        let hit_idx = (0..self.queue.len()).find(|&i| {
            let txn = &self.queue[i];
            self.banks[txn.decoded.bank].can_access(now, txn.decoded.row)
                && self.fe_permits(storage, &txn.req)
                && !self.has_older_conflict(i)
        });
        if let Some(idx) = hit_idx {
            self.issue_column(idx, storage);
            return;
        }

        // Pass 2: oldest transaction needing row work. Skip full-empty
        // transactions whose bit does not permit — opening their row
        // would be wasted work and can livelock conflicting rows.
        for idx in 0..self.queue.len() {
            let (bank_idx, row, permitted) = {
                let txn = &self.queue[idx];
                (
                    txn.decoded.bank,
                    txn.decoded.row,
                    self.fe_permits(storage, &txn.req),
                )
            };
            if !permitted || self.has_older_conflict(idx) {
                continue;
            }
            let bank = &mut self.banks[bank_idx];
            match bank.open_row() {
                Some(open) if open == row => continue, // waiting on tRCD/bus
                Some(_) => {
                    if bank.can_precharge(now) {
                        let timing = self.cfg.timing;
                        bank.precharge(now, &timing);
                        self.stats.row_conflicts += 1;
                        return;
                    }
                }
                None => {
                    if bank.can_activate(now) {
                        let timing = self.cfg.timing;
                        bank.activate(now, row, &timing);
                        self.queue[idx].caused_act = true;
                        self.stats.row_misses += 1;
                        return;
                    }
                }
            }
        }
    }

    fn fe_permits(&self, storage: &Storage, req: &MemRequest) -> bool {
        match req.kind {
            RequestKind::FeLoad => storage.is_full(req.addr),
            RequestKind::FeStore => !storage.is_full(req.addr),
            _ => true,
        }
    }

    /// The protected read data path: lands any retention faults due on
    /// the words of this access, SECDED-decodes them (correcting and
    /// scrubbing single-bit flips), then reads the — possibly repaired —
    /// bytes. Returns the data and whether an uncorrectable error
    /// poisons it.
    ///
    /// Fault draws are keyed by (word address, issue cycle): vault issue
    /// cycles are bit-identical across the stepping engines, so every
    /// engine sees the same faults. Only fully-contained aligned 8-byte
    /// words participate (ECC is word-granular).
    fn read_protected(&mut self, storage: &mut Storage, addr: u64, len: usize) -> (Vec<u8>, bool) {
        let mut poisoned = false;
        if let Some(f) = self.cfg.faults {
            let single = u64::from(
                f.effective_single_bit_ppm(self.cfg.timing.t_refi_ps, BASELINE_T_REFI_PS),
            );
            let double = u64::from(f.double_bit_ppm);
            let end = addr + len as u64;
            let mut word = addr.next_multiple_of(8);
            while word + 8 <= end {
                if single + double > 0 {
                    let roll = fault_roll(f.seed, FaultDomain::DramRetention, word, self.now);
                    if roll < single + double {
                        let v = fault_value(f.seed, FaultDomain::DramRetention, word, self.now);
                        let b1 = (v % 64) as u32;
                        if roll < single {
                            storage.corrupt_word(word, &[b1]);
                        } else {
                            let b2 = ((v >> 8) % 63) as u32;
                            // Map onto 0..64 \ {b1} so the flips are
                            // always two distinct bits.
                            let b2 = if b2 >= b1 { b2 + 1 } else { b2 };
                            storage.corrupt_word(word, &[b1, b2]);
                        }
                        self.stats.retention_faults += 1;
                    }
                }
                // Decode unconditionally: corruption injected by an
                // earlier uncorrectable read is still pending.
                match storage.ecc_decode(word) {
                    Some(Decoded::Corrected { .. }) => self.stats.ecc_corrected += 1,
                    Some(Decoded::Uncorrectable) => {
                        self.stats.ecc_uncorrectable += 1;
                        poisoned = true;
                    }
                    Some(Decoded::Clean) | None => {}
                }
                word += 8;
            }
        }
        (storage.read_vec(addr, len), poisoned)
    }

    fn issue_column(&mut self, idx: usize, storage: &mut Storage) {
        let mut txn = self.queue.remove(idx).expect("index in range");
        let now = self.now;
        let timing = self.cfg.timing;
        // A request spanning several columns of one row issues its
        // column commands tCCD apart (same bank); the data occupies the
        // shared bus for one burst per column.
        let len = if txn.req.kind == RequestKind::Write {
            txn.req.data.len()
        } else {
            txn.req.len
        } as u64;
        let col = self.cfg.col_bytes as u64;
        let cols = ((txn.req.addr % col) + len).div_ceil(col).max(1);
        let last_cmd = now + (cols - 1) * timing.t_ccd();
        let data_start =
            (last_cmd + timing.t_cl()).max(self.bus_free_at + (cols - 1) * self.cfg.burst_cycles);
        let burst_end = data_start + self.cfg.burst_cycles;
        self.bus_free_at = burst_end;
        self.banks[txn.decoded.bank].column_issued(last_cmd, &timing);

        if !txn.caused_act {
            self.stats.row_hits += 1;
        }

        let response = match txn.req.kind {
            RequestKind::Read => {
                let (data, poisoned) = self.read_protected(storage, txn.req.addr, txn.req.len);
                self.banks[txn.decoded.bank].access_read(burst_end, &timing);
                MemResponse {
                    id: txn.req.id,
                    kind: RequestKind::Read,
                    addr: txn.req.addr,
                    data,
                    poisoned,
                }
            }
            RequestKind::Write => {
                self.banks[txn.decoded.bank].access_write(burst_end, &timing);
                self.stats.bytes_written += txn.req.data.len() as u64;
                storage.write(txn.req.addr, &txn.req.data);
                MemResponse {
                    id: txn.req.id,
                    kind: RequestKind::Write,
                    addr: txn.req.addr,
                    data: Vec::new(),
                    poisoned: false,
                }
            }
            RequestKind::FeLoad => {
                let (data, poisoned) = self.read_protected(storage, txn.req.addr, 8);
                self.banks[txn.decoded.bank].access_read(burst_end, &timing);
                storage.set_full(txn.req.addr, false);
                MemResponse {
                    id: txn.req.id,
                    kind: RequestKind::FeLoad,
                    addr: txn.req.addr,
                    data,
                    poisoned,
                }
            }
            RequestKind::FeStore => {
                self.banks[txn.decoded.bank].access_write(burst_end, &timing);
                self.stats.bytes_written += txn.req.data.len() as u64;
                storage.write(txn.req.addr, &txn.req.data);
                storage.set_full(txn.req.addr, true);
                MemResponse {
                    id: txn.req.id,
                    kind: RequestKind::FeStore,
                    addr: txn.req.addr,
                    data: Vec::new(),
                    poisoned: false,
                }
            }
        };

        if self.cfg.policy == RowPolicy::ClosedPage {
            let pre_at = match txn.req.kind {
                RequestKind::Write | RequestKind::FeStore => burst_end + timing.t_wr(),
                _ => burst_end,
            };
            self.banks[txn.decoded.bank].auto_precharge_at(pre_at, &timing);
        }

        txn.caused_act = false;
        self.completions.push(PendingCompletion {
            at: burst_end,
            response,
            latency: burst_end - txn.enqueued,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_idle(
        vc: &mut VaultController,
        storage: &mut Storage,
        limit: Cycle,
    ) -> Vec<MemResponse> {
        let mut out = Vec::new();
        for _ in 0..limit {
            vc.tick(storage, &mut out);
            if vc.is_idle() {
                break;
            }
        }
        assert!(
            vc.is_idle(),
            "controller did not drain within {limit} cycles"
        );
        out
    }

    #[test]
    fn read_returns_written_data() {
        let mut storage = Storage::new();
        storage.write(64, &[7; 32]);
        let mut vc = VaultController::new(0, MemConfig::baseline());
        vc.enqueue(MemRequest::read(1, 64, 32)).unwrap();
        let out = run_until_idle(&mut vc, &mut storage, 500);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].data, vec![7; 32]);
        let s = vc.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_hits, 0);
    }

    #[test]
    fn cold_read_latency_is_trcd_plus_tcl_plus_burst() {
        let mut storage = Storage::new();
        let cfg = MemConfig::baseline();
        let expect = cfg.timing.t_rcd() + cfg.timing.t_cl() + cfg.burst_cycles;
        let mut vc = VaultController::new(0, cfg);
        vc.enqueue(MemRequest::read(1, 0, 32)).unwrap();
        let out = run_until_idle(&mut vc, &mut storage, 500);
        assert_eq!(out.len(), 1);
        // +2: one cycle for the enqueue tick to see it, one for ACT itself.
        let measured = vc.stats().total_latency_cycles;
        assert!(
            (expect..=expect + 2).contains(&measured),
            "latency {measured}, expected about {expect}"
        );
    }

    #[test]
    fn open_page_hits_same_row() {
        let mut storage = Storage::new();
        let mut vc = VaultController::new(0, MemConfig::baseline());
        // Two columns of the same row.
        vc.enqueue(MemRequest::read(1, 0, 32)).unwrap();
        vc.enqueue(MemRequest::read(2, 32, 32)).unwrap();
        run_until_idle(&mut vc, &mut storage, 500);
        let s = vc.stats();
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_hits, 1);
    }

    #[test]
    fn closed_page_never_hits() {
        let mut storage = Storage::new();
        let mut vc = VaultController::new(0, MemConfig::closed_page());
        vc.enqueue(MemRequest::read(1, 0, 32)).unwrap();
        vc.enqueue(MemRequest::read(2, 32, 32)).unwrap();
        run_until_idle(&mut vc, &mut storage, 800);
        let s = vc.stats();
        assert_eq!(s.row_misses, 2);
        assert_eq!(s.row_hits, 0);
    }

    #[test]
    fn row_conflict_precharges() {
        let mut storage = Storage::new();
        let cfg = MemConfig::baseline();
        // Same bank, different rows: rows advance every
        // banks*row_bytes bytes under vault-row-bank-col.
        let stride = (cfg.banks_per_vault * cfg.row_bytes) as u64;
        let mut vc = VaultController::new(0, cfg);
        vc.enqueue(MemRequest::read(1, 0, 32)).unwrap();
        vc.enqueue(MemRequest::read(2, stride, 32)).unwrap();
        run_until_idle(&mut vc, &mut storage, 1000);
        let s = vc.stats();
        assert_eq!(s.row_conflicts, 1);
        assert_eq!(s.row_misses, 2);
    }

    #[test]
    fn different_banks_overlap() {
        // Reads to N different banks should take far less than N x the
        // single-read latency thanks to bank-level parallelism.
        let mut storage = Storage::new();
        let cfg = MemConfig::baseline();
        let row_stride = cfg.row_bytes as u64; // next bank
        let mut vc = VaultController::new(0, cfg.clone());
        for b in 0..8u64 {
            vc.enqueue(MemRequest::read(b, b * row_stride, 32)).unwrap();
        }
        let mut out = Vec::new();
        let mut cycles = 0;
        while !vc.is_idle() {
            vc.tick(&mut storage, &mut out);
            cycles += 1;
            assert!(cycles < 5000);
        }
        assert_eq!(out.len(), 8);
        let single = cfg.timing.t_rcd() + cfg.timing.t_cl() + cfg.burst_cycles + 2;
        assert!(
            cycles < 8 * single / 2,
            "8 bank-parallel reads took {cycles} cycles (single ~{single})"
        );
    }

    #[test]
    fn refresh_blocks_and_counts() {
        let mut storage = Storage::new();
        let cfg = MemConfig::baseline();
        let refi = cfg.timing.t_refi();
        let mut vc = VaultController::new(0, cfg);
        let mut out = Vec::new();
        for _ in 0..(refi * 3 + 10) {
            vc.tick(&mut storage, &mut out);
        }
        assert_eq!(vc.stats().refreshes, 3);
    }

    #[test]
    fn fe_store_then_load_pair() {
        let mut storage = Storage::new();
        let mut vc = VaultController::new(0, MemConfig::baseline());
        // The load is queued first but cannot proceed until the store
        // sets the full bit.
        vc.enqueue(MemRequest::fe_load(1, 128)).unwrap();
        vc.enqueue(MemRequest::fe_store(2, 128, 0xabcd)).unwrap();
        let out = run_until_idle(&mut vc, &mut storage, 2000);
        assert_eq!(out.len(), 2);
        let load = out.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(
            u64::from_le_bytes(load.data.clone().try_into().unwrap()),
            0xabcd
        );
        assert!(!storage.is_full(128), "load consumed the full bit");
    }

    #[test]
    fn fe_load_waits_indefinitely_without_producer() {
        let mut storage = Storage::new();
        let mut vc = VaultController::new(0, MemConfig::baseline());
        vc.enqueue(MemRequest::fe_load(1, 128)).unwrap();
        let mut out = Vec::new();
        for _ in 0..500 {
            vc.tick(&mut storage, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(vc.pending(), 1);
    }

    #[test]
    fn queue_backpressure() {
        let cfg = MemConfig::baseline();
        let depth = cfg.trans_queue_depth;
        let mut vc = VaultController::new(0, cfg);
        for i in 0..depth {
            vc.enqueue(MemRequest::read(i as u64, (i * 32) as u64, 32))
                .unwrap();
        }
        assert!(vc.enqueue(MemRequest::read(99, 0, 32)).is_err());
    }

    #[test]
    fn multi_column_packets_within_a_row_are_legal() {
        // With the 128 B packet option, requests span up to 128 B of one
        // row.
        let mut storage = Storage::new();
        storage.write(16, &[9; 32]);
        let mut vc = VaultController::new(0, MemConfig::with_hmc_packets());
        vc.enqueue(MemRequest::read(1, 16, 32)).unwrap();
        vc.enqueue(MemRequest::read(2, 0, 128)).unwrap();
        let out = run_until_idle(&mut vc, &mut storage, 1000);
        assert_eq!(out.iter().find(|r| r.id == 1).unwrap().data, vec![9; 32]);
        assert_eq!(out.iter().find(|r| r.id == 2).unwrap().data.len(), 128);
    }

    #[test]
    fn injected_single_bit_faults_are_corrected_and_counted() {
        // Fire on every word-read: the data still comes back golden
        // because SECDED corrects each flip on the fly.
        let cfg = MemConfig::baseline().with_faults(vip_faults::DramFaultConfig {
            seed: 0xfa017,
            single_bit_ppm: 1_000_000,
            double_bit_ppm: 0,
        });
        let mut storage = Storage::new();
        storage.write(0, &[0x5a; 32]);
        let mut vc = VaultController::new(0, cfg);
        vc.enqueue(MemRequest::read(1, 0, 32)).unwrap();
        let out = run_until_idle(&mut vc, &mut storage, 500);
        assert_eq!(out[0].data, vec![0x5a; 32], "corrected in flight");
        assert!(!out[0].poisoned);
        let s = vc.stats();
        assert_eq!(s.retention_faults, 4, "one per word of the column");
        assert_eq!(s.ecc_corrected, 4);
        assert_eq!(s.ecc_uncorrectable, 0);
        // Scrubbing repaired the backing store too.
        assert_eq!(storage.read_vec(0, 32), vec![0x5a; 32]);
        assert_eq!(storage.corrupted_words(), 0);
    }

    #[test]
    fn injected_double_bit_faults_poison_the_response() {
        let cfg = MemConfig::baseline().with_faults(vip_faults::DramFaultConfig {
            seed: 3,
            single_bit_ppm: 0,
            double_bit_ppm: 1_000_000,
        });
        let mut storage = Storage::new();
        storage.write(0, &[0x11; 32]);
        let mut vc = VaultController::new(0, cfg);
        vc.enqueue(MemRequest::read(7, 0, 32)).unwrap();
        let out = run_until_idle(&mut vc, &mut storage, 500);
        assert!(out[0].poisoned);
        assert_ne!(out[0].data, vec![0x11; 32], "data really is damaged");
        let s = vc.stats();
        assert_eq!(s.ecc_uncorrectable, 4);
        assert_eq!(s.ecc_corrected, 0);
    }

    #[test]
    fn zero_rate_faults_change_nothing() {
        // A wired injector with zero rates must be bit-identical to no
        // injector at all, including every statistic.
        let run = |cfg: MemConfig| {
            let mut storage = Storage::new();
            storage.write(64, &[7; 32]);
            let mut vc = VaultController::new(0, cfg);
            vc.enqueue(MemRequest::read(1, 64, 32)).unwrap();
            vc.enqueue(MemRequest::fe_store(2, 128, 5)).unwrap();
            vc.enqueue(MemRequest::fe_load(3, 128)).unwrap();
            let out = run_until_idle(&mut vc, &mut storage, 2000);
            (out, vc.stats())
        };
        let plain = run(MemConfig::baseline());
        let wired = run(
            MemConfig::baseline().with_faults(vip_faults::DramFaultConfig {
                seed: 99,
                single_bit_ppm: 0,
                double_bit_ppm: 0,
            }),
        );
        assert_eq!(plain, wired);
    }

    #[test]
    #[should_panic(expected = "request granule")]
    fn crossing_the_request_granule_panics() {
        // Default packets are one column; 32 B starting mid-column
        // crosses the granule.
        let mut vc = VaultController::new(0, MemConfig::baseline());
        let _ = vc.enqueue(MemRequest::read(1, 16, 32));
    }

    #[test]
    #[should_panic(expected = "request granule")]
    fn crossing_a_row_panics_even_with_big_packets() {
        let mut vc = VaultController::new(0, MemConfig::with_hmc_packets());
        let _ = vc.enqueue(MemRequest::read(1, 64, 128));
    }

    #[test]
    #[should_panic(expected = "routed to vault")]
    fn wrong_vault_panics() {
        let cfg = MemConfig::baseline();
        let other_vault_addr = cfg.vault_base(1);
        let mut vc = VaultController::new(0, cfg);
        let _ = vc.enqueue(MemRequest::read(1, other_vault_addr, 32));
    }
}

//! Memory request and response types.

use std::fmt;

use vip_snap::{Reader, SnapError, Snapshot, Writer};

/// Caller-chosen request identifier, echoed in the matching
/// [`MemResponse`]. The system simulator uses it to route completions
/// back to the issuing PE.
pub type ReqId = u64;

/// The operation a [`MemRequest`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Read `len` bytes.
    Read,
    /// Write the carried bytes.
    Write,
    /// Full-empty load (§IV-A): wait until the 8-byte word's full bit is
    /// set, read it, and atomically clear the bit. Services producer-
    /// consumer synchronization at tile boundaries.
    FeLoad,
    /// Full-empty store: wait until the full bit is clear, write the
    /// 8-byte word, and atomically set the bit.
    FeStore,
}

impl RequestKind {
    /// Whether the request returns data to the requester.
    #[must_use]
    pub fn returns_data(self) -> bool {
        matches!(self, RequestKind::Read | RequestKind::FeLoad)
    }
}

/// A single memory transaction, at most one DRAM column (32 B) long and
/// not crossing a column boundary; the PE load-store unit splits larger
/// transfers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-chosen identifier echoed in the response.
    pub id: ReqId,
    /// Operation.
    pub kind: RequestKind,
    /// Physical byte address.
    pub addr: u64,
    /// Length in bytes (reads); for writes, `data.len()` is used.
    pub len: usize,
    /// Payload for writes and full-empty stores.
    pub data: Vec<u8>,
}

impl MemRequest {
    /// A read of `len` bytes at `addr`.
    #[must_use]
    pub fn read(id: ReqId, addr: u64, len: usize) -> Self {
        MemRequest {
            id,
            kind: RequestKind::Read,
            addr,
            len,
            data: Vec::new(),
        }
    }

    /// A write of `data` at `addr`.
    #[must_use]
    pub fn write(id: ReqId, addr: u64, data: Vec<u8>) -> Self {
        let len = data.len();
        MemRequest {
            id,
            kind: RequestKind::Write,
            addr,
            len,
            data,
        }
    }

    /// A full-empty load of the 8-byte word at `addr` (must be 8-byte
    /// aligned).
    #[must_use]
    pub fn fe_load(id: ReqId, addr: u64) -> Self {
        debug_assert_eq!(addr % 8, 0, "full-empty accesses are word-aligned");
        MemRequest {
            id,
            kind: RequestKind::FeLoad,
            addr,
            len: 8,
            data: Vec::new(),
        }
    }

    /// A full-empty store of `value` to the 8-byte word at `addr`.
    #[must_use]
    pub fn fe_store(id: ReqId, addr: u64, value: u64) -> Self {
        debug_assert_eq!(addr % 8, 0, "full-empty accesses are word-aligned");
        MemRequest {
            id,
            kind: RequestKind::FeStore,
            addr,
            len: 8,
            data: value.to_le_bytes().to_vec(),
        }
    }

    /// Whether this request only makes forward progress when the word's
    /// full-empty bit permits.
    #[must_use]
    pub fn is_full_empty(&self) -> bool {
        matches!(self.kind, RequestKind::FeLoad | RequestKind::FeStore)
    }
}

impl Snapshot for RequestKind {
    fn save(&self, w: &mut Writer) {
        w.u8(match self {
            RequestKind::Read => 0,
            RequestKind::Write => 1,
            RequestKind::FeLoad => 2,
            RequestKind::FeStore => 3,
        });
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => RequestKind::Read,
            1 => RequestKind::Write,
            2 => RequestKind::FeLoad,
            3 => RequestKind::FeStore,
            _ => return Err(SnapError::Corrupt("request kind tag")),
        })
    }
}

impl Snapshot for MemRequest {
    fn save(&self, w: &mut Writer) {
        w.u64(self.id);
        self.kind.save(w);
        w.u64(self.addr);
        w.usize(self.len);
        w.bytes(&self.data);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(MemRequest {
            id: r.u64()?,
            kind: RequestKind::restore(r)?,
            addr: r.u64()?,
            len: r.usize()?,
            data: r.bytes()?.to_vec(),
        })
    }
}

/// Completion of a [`MemRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemResponse {
    /// The identifier of the completed request.
    pub id: ReqId,
    /// The operation that completed.
    pub kind: RequestKind,
    /// The request's address.
    pub addr: u64,
    /// Read data (empty for writes and full-empty stores).
    pub data: Vec<u8>,
    /// True if ECC detected an uncorrectable error in `data`: the bytes
    /// cannot be trusted and the consumer must raise a machine-check
    /// style error instead of using them.
    pub poisoned: bool,
}

impl Snapshot for MemResponse {
    fn save(&self, w: &mut Writer) {
        w.u64(self.id);
        self.kind.save(w);
        w.u64(self.addr);
        w.bytes(&self.data);
        w.bool(self.poisoned);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(MemResponse {
            id: r.u64()?,
            kind: RequestKind::restore(r)?,
            addr: r.u64()?,
            data: r.bytes()?.to_vec(),
            poisoned: r.bool()?,
        })
    }
}

/// Error returned when a vault's transaction queue is full; retry next
/// cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFullError {
    /// The vault whose queue rejected the request.
    pub vault: usize,
}

impl fmt::Display for QueueFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vault {} transaction queue is full", self.vault)
    }
}

impl std::error::Error for QueueFullError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = MemRequest::read(1, 64, 32);
        assert_eq!(r.kind, RequestKind::Read);
        assert!(r.kind.returns_data());
        assert!(!r.is_full_empty());

        let w = MemRequest::write(2, 64, vec![1, 2, 3]);
        assert_eq!(w.len, 3);
        assert!(!w.kind.returns_data());

        let fl = MemRequest::fe_load(3, 8);
        assert!(fl.is_full_empty());
        assert!(fl.kind.returns_data());

        let fs = MemRequest::fe_store(4, 16, 0xdead_beef);
        assert_eq!(fs.data.len(), 8);
        assert!(fs.is_full_empty());
    }
}

//! Memory-system configuration and the Figure 5 sensitivity presets.

use std::fmt;

use crate::addr::AddressMapping;
use crate::timing::DramTiming;
use vip_faults::DramFaultConfig;

/// Row-buffer management policy (§III-C, §VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPolicy {
    /// Leave rows open after column accesses; precharge only on a
    /// conflict. VIP's choice: with no caches, spatially-close requests
    /// hit the open row.
    #[default]
    OpenPage,
    /// Precharge immediately after every column access (the HMC default).
    ClosedPage,
}

impl fmt::Display for RowPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowPolicy::OpenPage => f.write_str("open-page"),
            RowPolicy::ClosedPage => f.write_str("closed-page"),
        }
    }
}

/// Error returned by [`MemConfig::validate`]: which configuration was
/// rejected, which field broke the constraint, and why. Structured so
/// callers (and test failures) name the exact knob to fix instead of
/// panicking with an anonymous string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The configuration's human-readable name (e.g. "open page").
    pub config: &'static str,
    /// The offending field of [`MemConfig`].
    pub field: &'static str,
    /// What constraint the field violates.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid memory configuration {:?}: {}: {}",
            self.config, self.field, self.message
        )
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of the HMC-style memory system.
///
/// The default ([`MemConfig::baseline`]) is the paper's Table III: 32
/// vaults × 16 banks × 65,536 rows × 256 B, open page, vault index in the
/// high address bits, refresh-4x. The other constructors are the exact
/// variations of the Figure 5 sensitivity study; each preserves total
/// capacity (8 GiB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Number of vaults (vertical partitions). Table III: 32.
    pub vaults: usize,
    /// Banks per vault (the HMC has one bank per rank, so "banks" and
    /// "ranks" are interchangeable — §VI-C). Table III: 16.
    pub banks_per_vault: usize,
    /// Rows per bank. Table III: 65,536.
    pub rows_per_bank: usize,
    /// Bytes per row. Table III: 256.
    pub row_bytes: usize,
    /// Bytes per column access (the transfer granule). 32 B, burst of 8
    /// on the 32-bit vault data path.
    pub col_bytes: usize,
    /// Row-buffer policy.
    pub policy: RowPolicy,
    /// Address-interleaving scheme.
    pub mapping: AddressMapping,
    /// DRAM timing parameters.
    pub timing: DramTiming,
    /// Transaction-queue depth per vault. Table III: 32.
    pub trans_queue_depth: usize,
    /// Cycles the vault data bus is busy per column transfer: 32 B at
    /// 8 B/cycle (32-bit DDR TSVs at 1.25 GHz = 10 GB/s per vault).
    pub burst_cycles: u64,
    /// Largest request packet in bytes. The paper's DRAMSim2 setup uses
    /// one 32 B column per transaction (Table III: burst 8 on a 32-bit
    /// path), which is the default; the HMC specification also allows
    /// up to 128 B packets ([`MemConfig::with_hmc_packets`]).
    pub max_packet_bytes: usize,
    /// DRAM retention-fault injection on the vault read path (`None`:
    /// no injector wired). The single-bit rate scales with the
    /// configured tREFI relative to Table III's baseline, matching the
    /// physics of the Figure 5 refresh sweep.
    pub faults: Option<DramFaultConfig>,
    /// A human-readable name for reports.
    pub name: &'static str,
}

impl MemConfig {
    /// The paper's baseline configuration ("open page" in Figure 5).
    #[must_use]
    pub fn baseline() -> Self {
        MemConfig {
            vaults: 32,
            banks_per_vault: 16,
            rows_per_bank: 65_536,
            row_bytes: 256,
            col_bytes: 32,
            policy: RowPolicy::OpenPage,
            mapping: AddressMapping::VaultRowBankCol,
            timing: DramTiming::table_iii(),
            trans_queue_depth: 32,
            burst_cycles: 4,
            max_packet_bytes: 32,
            faults: None,
            name: "open page",
        }
    }

    /// Closed-page row-buffer policy (the HMC default; Figure 5 "closed
    /// page").
    #[must_use]
    pub fn closed_page() -> Self {
        MemConfig {
            policy: RowPolicy::ClosedPage,
            name: "closed page",
            ..Self::baseline()
        }
    }

    /// 4× the banks (ranks), capacity held constant (Figure 5 "more
    /// ranks").
    #[must_use]
    pub fn more_ranks() -> Self {
        MemConfig {
            banks_per_vault: 64,
            rows_per_bank: 16_384,
            name: "more ranks",
            ..Self::baseline()
        }
    }

    /// ¼ the banks (ranks), capacity held constant (Figure 5 "fewer
    /// ranks").
    #[must_use]
    pub fn fewer_ranks() -> Self {
        MemConfig {
            banks_per_vault: 4,
            rows_per_bank: 262_144,
            name: "fewer ranks",
            ..Self::baseline()
        }
    }

    /// 4× wider rows, capacity held constant (Figure 5 "wide row").
    #[must_use]
    pub fn wide_row() -> Self {
        MemConfig {
            row_bytes: 1024,
            rows_per_bank: 16_384,
            name: "wide row",
            ..Self::baseline()
        }
    }

    /// ¼-width rows, capacity held constant (Figure 5 "narrow row").
    #[must_use]
    pub fn narrow_row() -> Self {
        MemConfig {
            row_bytes: 64,
            rows_per_bank: 262_144,
            name: "narrow row",
            ..Self::baseline()
        }
    }

    /// tREFI and tRFC doubled (Figure 5 "refresh 2x").
    #[must_use]
    pub fn refresh_2x() -> Self {
        MemConfig {
            timing: DramTiming::table_iii().with_refresh_scale(2),
            name: "refresh 2x",
            ..Self::baseline()
        }
    }

    /// tREFI and tRFC at 4× — the standard JEDEC refresh rate (Figure 5
    /// "refresh 1x").
    #[must_use]
    pub fn refresh_1x() -> Self {
        MemConfig {
            timing: DramTiming::table_iii().with_refresh_scale(4),
            name: "refresh 1x",
            ..Self::baseline()
        }
    }

    /// All eight Figure 5 configurations, in the figure's order (bottom to
    /// top: open page, closed page, narrow row, wide row, fewer ranks,
    /// more ranks, refresh 2x, refresh 1x).
    #[must_use]
    pub fn figure5_sweep() -> Vec<MemConfig> {
        vec![
            Self::baseline(),
            Self::closed_page(),
            Self::narrow_row(),
            Self::wide_row(),
            Self::fewer_ranks(),
            Self::more_ranks(),
            Self::refresh_2x(),
            Self::refresh_1x(),
        ]
    }

    /// Checks internal consistency (power-of-two geometry, column fits in
    /// a row, non-empty queues).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |field: &'static str, message: String| ConfigError {
            config: self.name,
            field,
            message,
        };
        let pow2 = |field: &'static str, v: usize| {
            if v.is_power_of_two() {
                Ok(())
            } else {
                Err(err(field, format!("{v} must be a power of two")))
            }
        };
        pow2("vaults", self.vaults)?;
        pow2("banks_per_vault", self.banks_per_vault)?;
        pow2("rows_per_bank", self.rows_per_bank)?;
        pow2("row_bytes", self.row_bytes)?;
        pow2("col_bytes", self.col_bytes)?;
        if self.col_bytes > self.row_bytes {
            return Err(err(
                "col_bytes",
                format!("{} exceeds row_bytes ({})", self.col_bytes, self.row_bytes),
            ));
        }
        if self.trans_queue_depth == 0 {
            return Err(err("trans_queue_depth", "must be nonzero".into()));
        }
        if self.burst_cycles == 0 {
            return Err(err("burst_cycles", "must be nonzero".into()));
        }
        if !self.max_packet_bytes.is_power_of_two() || self.max_packet_bytes < self.col_bytes {
            return Err(err(
                "max_packet_bytes",
                format!(
                    "{} must be a power of two of at least one column",
                    self.max_packet_bytes
                ),
            ));
        }
        if let Some(f) = self.faults {
            let cap = vip_faults::PPM_SCALE as u32;
            if f.single_bit_ppm > cap || f.double_bit_ppm > cap {
                return Err(err(
                    "faults",
                    format!(
                        "fault rates ({}, {} ppm) exceed {cap} ppm",
                        f.single_bit_ppm, f.double_bit_ppm
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Capacity of one vault in bytes.
    #[must_use]
    pub fn vault_bytes(&self) -> u64 {
        (self.banks_per_vault * self.rows_per_bank * self.row_bytes) as u64
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.vault_bytes() * self.vaults as u64
    }

    /// The vault an address maps to under this configuration's scheme.
    #[must_use]
    pub fn vault_of(&self, addr: u64) -> usize {
        self.mapping.decode(self, addr).vault
    }

    /// The lowest address served by `vault` under the
    /// vault-high-bits mapping — the base of that vault's contiguous
    /// region. The kernel tilers use this to place data in a PE's local
    /// vault (§III-C).
    ///
    /// # Panics
    ///
    /// Panics if the configured mapping is not
    /// [`AddressMapping::VaultRowBankCol`] (under low-order interleaving
    /// vaults do not own contiguous regions).
    #[must_use]
    pub fn vault_base(&self, vault: usize) -> u64 {
        assert_eq!(
            self.mapping,
            AddressMapping::VaultRowBankCol,
            "vault_base is only meaningful with the vault-high mapping"
        );
        assert!(vault < self.vaults, "vault {vault} out of range");
        self.vault_bytes() * vault as u64
    }

    /// The baseline configuration with full-size 128 B HMC request
    /// packets (a fidelity option beyond the paper's 32 B DRAMSim2
    /// transactions).
    #[must_use]
    pub fn with_hmc_packets() -> Self {
        MemConfig {
            max_packet_bytes: 128,
            name: "open page, 128 B packets",
            ..Self::baseline()
        }
    }

    /// Largest single request the stack accepts: at most
    /// [`max_packet_bytes`](Self::max_packet_bytes), never crossing a
    /// DRAM row. Under low-order vault interleaving consecutive columns
    /// belong to different vaults, so packets shrink to one column
    /// there.
    #[must_use]
    pub fn request_granule(&self) -> usize {
        match self.mapping {
            AddressMapping::VaultRowBankCol => self.row_bytes.min(self.max_packet_bytes),
            AddressMapping::LowInterleave => self.col_bytes,
        }
    }

    /// Peak aggregate DRAM bandwidth in bytes per cycle (all vaults).
    #[must_use]
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.vaults as f64 * self.col_bytes as f64 / self.burst_cycles as f64
    }

    /// This configuration with DRAM retention-fault injection wired.
    #[must_use]
    pub fn with_faults(self, faults: DramFaultConfig) -> Self {
        MemConfig {
            faults: Some(faults),
            ..self
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate_and_preserve_capacity() -> Result<(), ConfigError> {
        let base = MemConfig::baseline();
        assert_eq!(base.total_bytes(), 8 << 30); // 8 GiB
        for cfg in MemConfig::figure5_sweep() {
            // A violation propagates as a ConfigError naming the preset
            // and field, not as a panic.
            cfg.validate()?;
            assert_eq!(cfg.total_bytes(), base.total_bytes(), "{}", cfg.name);
        }
        Ok(())
    }

    #[test]
    fn config_errors_name_config_and_field() {
        let mut cfg = MemConfig::narrow_row();
        cfg.rows_per_bank = 100;
        let e = cfg.validate().unwrap_err();
        assert_eq!(e.config, "narrow row");
        assert_eq!(e.field, "rows_per_bank");
        let shown = e.to_string();
        assert!(
            shown.contains("narrow row") && shown.contains("rows_per_bank"),
            "{shown}"
        );

        let hot = MemConfig::baseline().with_faults(vip_faults::DramFaultConfig {
            seed: 1,
            single_bit_ppm: 2_000_000,
            double_bit_ppm: 0,
        });
        let e = hot.validate().unwrap_err();
        assert_eq!(e.field, "faults");
    }

    #[test]
    fn baseline_matches_table_iii() {
        let cfg = MemConfig::baseline();
        assert_eq!(cfg.vaults, 32);
        assert_eq!(cfg.banks_per_vault, 16);
        assert_eq!(cfg.rows_per_bank, 65_536);
        assert_eq!(cfg.row_bytes, 256);
        assert_eq!(cfg.policy, RowPolicy::OpenPage);
        assert_eq!(cfg.trans_queue_depth, 32);
        // 32 B per 4 cycles per vault = 10 GB/s; x32 vaults = 320 GB/s.
        let gb_per_s = cfg.peak_bytes_per_cycle() * 1.25e9 / 1e9;
        assert!((gb_per_s - 320.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = MemConfig::baseline();
        cfg.vaults = 3;
        assert!(cfg.validate().is_err());

        let mut cfg = MemConfig::baseline();
        cfg.col_bytes = 512;
        assert!(cfg.validate().is_err());

        let mut cfg = MemConfig::baseline();
        cfg.trans_queue_depth = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn vault_base_partitions_address_space() {
        let cfg = MemConfig::baseline();
        assert_eq!(cfg.vault_base(0), 0);
        assert_eq!(cfg.vault_base(1), 256 << 20); // 256 MiB per vault
        assert_eq!(cfg.vault_of(cfg.vault_base(5)), 5);
        assert_eq!(cfg.vault_of(cfg.vault_base(5) + 12345), 5);
    }
}

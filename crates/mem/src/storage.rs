//! Sparse execution-driven backing store with full-empty bits.

use std::collections::{HashMap, HashSet};
use vip_faults::secded::{self, Decoded};
use vip_snap::{Reader, SnapError, Snapshot, Writer};

const PAGE_BYTES: u64 = 4096;

/// Sparse byte-addressable storage for the whole memory stack.
///
/// The simulator is execution-driven (§V-A): loads return the data stores
/// actually put there, which is how simulated kernel outputs are verified
/// against the golden references. Untouched memory reads as zero. A
/// sidecar set tracks the full-empty bit of each 8-byte word (§IV-A);
/// words start *empty*.
///
/// A second sidecar models SECDED (72,64) check bits *lazily*: a word is
/// implicitly clean until the fault injector corrupts it, at which point
/// the check byte of the pristine word is snapshotted into `ecc`. The
/// vault controllers decode against that snapshot on the read path —
/// correcting and scrubbing single-bit flips, poisoning responses on
/// double-bit flips. An overwrite supersedes any pending corruption.
#[derive(Debug, Clone, Default)]
pub struct Storage {
    pages: HashMap<u64, Box<[u8]>>,
    full_bits: HashSet<u64>,
    ecc: HashMap<u64, u8>,
}

impl Storage {
    /// Creates empty (all-zero, all-empty) storage.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        let mut at = addr;
        let mut done = 0;
        while done < buf.len() {
            let page = at / PAGE_BYTES;
            let off = (at % PAGE_BYTES) as usize;
            let chunk = ((PAGE_BYTES as usize) - off).min(buf.len() - done);
            match self.pages.get(&page) {
                Some(data) => buf[done..done + chunk].copy_from_slice(&data[off..off + chunk]),
                None => buf[done..done + chunk].fill(0),
            }
            at += chunk as u64;
            done += chunk;
        }
    }

    /// Convenience: reads `len` bytes into a fresh vector.
    #[must_use]
    pub fn read_vec(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0; len];
        self.read(addr, &mut buf);
        buf
    }

    /// Writes `data` starting at `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let mut at = addr;
        let mut done = 0;
        while done < data.len() {
            let page = at / PAGE_BYTES;
            let off = (at % PAGE_BYTES) as usize;
            let chunk = ((PAGE_BYTES as usize) - off).min(data.len() - done);
            let page_data = self
                .pages
                .entry(page)
                .or_insert_with(|| vec![0; PAGE_BYTES as usize].into_boxed_slice());
            page_data[off..off + chunk].copy_from_slice(&data[done..done + chunk]);
            at += chunk as u64;
            done += chunk;
        }
        if !self.ecc.is_empty() && !data.is_empty() {
            // A write supersedes any pending corruption in the words it
            // touches: the freshly written word is clean by definition.
            let mut word = addr & !7;
            let end = addr + data.len() as u64;
            while word < end {
                self.ecc.remove(&word);
                word += 8;
            }
        }
    }

    /// Reads the little-endian 64-bit word at `addr`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut buf = [0; 8];
        self.read(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian 64-bit word at `addr`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }

    /// The full-empty bit of the word containing `addr`.
    #[must_use]
    pub fn is_full(&self, addr: u64) -> bool {
        self.full_bits.contains(&(addr & !7))
    }

    /// Sets or clears the full-empty bit of the word containing `addr`.
    pub fn set_full(&mut self, addr: u64, full: bool) {
        let word = addr & !7;
        if full {
            self.full_bits.insert(word);
        } else {
            self.full_bits.remove(&word);
        }
    }

    /// Bytes of storage actually materialized (diagnostics).
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_BYTES
    }

    /// Injects a retention fault: flips `bits` (0..64) of the 8-byte
    /// word at `addr` (word-aligned). The pristine word's SECDED check
    /// byte is snapshotted first, exactly as real check bits written at
    /// store time would survive a later cell upset, so a subsequent
    /// [`Storage::ecc_decode`] sees data that disagrees with its code.
    pub fn corrupt_word(&mut self, addr: u64, bits: &[u32]) {
        debug_assert_eq!(addr % 8, 0, "corruption is word-granular");
        let word = self.read_u64(addr);
        self.ecc.entry(addr).or_insert_with(|| secded::encode(word));
        let mut corrupted = word;
        for &bit in bits {
            corrupted ^= 1 << (bit % 64);
        }
        // Raw page write: must not clear the sidecar entry just made.
        let bytes = corrupted.to_le_bytes();
        let mut at = addr;
        let mut done = 0;
        while done < bytes.len() {
            let page = at / PAGE_BYTES;
            let off = (at % PAGE_BYTES) as usize;
            let chunk = ((PAGE_BYTES as usize) - off).min(bytes.len() - done);
            let page_data = self
                .pages
                .entry(page)
                .or_insert_with(|| vec![0; PAGE_BYTES as usize].into_boxed_slice());
            page_data[off..off + chunk].copy_from_slice(&bytes[done..done + chunk]);
            at += chunk as u64;
            done += chunk;
        }
    }

    /// SECDED-decodes the word at `addr` (word-aligned) against its
    /// sidecar check byte. `None` means the word was never corrupted
    /// and is implicitly clean. On a correctable result the word is
    /// scrubbed in place (corrected data written back, sidecar entry
    /// retired); an uncorrectable word keeps its entry so later reads
    /// stay poisoned too.
    pub fn ecc_decode(&mut self, addr: u64) -> Option<Decoded> {
        debug_assert_eq!(addr % 8, 0, "ECC is word-granular");
        let check = *self.ecc.get(&addr)?;
        let decoded = secded::decode(self.read_u64(addr), check);
        match decoded {
            Decoded::Clean => {
                self.ecc.remove(&addr);
            }
            Decoded::Corrected { data, .. } => {
                // `write` retires the sidecar entry.
                self.write_u64(addr, data);
            }
            Decoded::Uncorrectable => {}
        }
        Some(decoded)
    }

    /// Number of words with an outstanding (injected, not yet scrubbed
    /// or overwritten) corruption — diagnostics.
    #[must_use]
    pub fn corrupted_words(&self) -> usize {
        self.ecc.len()
    }
}

/// Pages, full-empty bits, and the ECC sidecar serialize in sorted key
/// order so the same memory image always produces the same bytes — the
/// containers are hash maps, whose iteration order is not canonical.
impl Snapshot for Storage {
    fn save(&self, w: &mut Writer) {
        let mut pages: Vec<u64> = self.pages.keys().copied().collect();
        pages.sort_unstable();
        w.usize(pages.len());
        for page in pages {
            w.u64(page);
            w.raw(&self.pages[&page]);
        }
        let mut full: Vec<u64> = self.full_bits.iter().copied().collect();
        full.sort_unstable();
        full.save(w);
        let mut ecc: Vec<(u64, u8)> = self.ecc.iter().map(|(&k, &v)| (k, v)).collect();
        ecc.sort_unstable();
        ecc.save(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n_pages = r.usize()?;
        let mut pages = HashMap::new();
        for _ in 0..n_pages {
            let page = r.u64()?;
            let data = r.raw(PAGE_BYTES as usize)?;
            pages.insert(page, Vec::from(data).into_boxed_slice());
        }
        let full_bits: HashSet<u64> = Vec::<u64>::restore(r)?.into_iter().collect();
        let ecc: HashMap<u64, u8> = Vec::<(u64, u8)>::restore(r)?.into_iter().collect();
        Ok(Storage {
            pages,
            full_bits,
            ecc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_and_roundtrip() {
        let mut s = Storage::new();
        assert_eq!(s.read_vec(1234, 16), vec![0; 16]);
        s.write(1234, &[1, 2, 3]);
        assert_eq!(s.read_vec(1233, 5), vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn cross_page_access() {
        let mut s = Storage::new();
        let addr = PAGE_BYTES - 2;
        s.write(addr, &[9, 8, 7, 6]);
        assert_eq!(s.read_vec(addr, 4), vec![9, 8, 7, 6]);
        assert_eq!(s.resident_bytes(), 2 * PAGE_BYTES);
    }

    #[test]
    fn u64_helpers() {
        let mut s = Storage::new();
        s.write_u64(64, 0x1122_3344_5566_7788);
        assert_eq!(s.read_u64(64), 0x1122_3344_5566_7788);
        assert_eq!(s.read_vec(64, 1)[0], 0x88); // little endian
    }

    #[test]
    fn full_empty_bits() {
        let mut s = Storage::new();
        assert!(!s.is_full(128));
        s.set_full(128, true);
        assert!(s.is_full(128));
        assert!(s.is_full(135)); // same word
        assert!(!s.is_full(136)); // next word
        s.set_full(130, false);
        assert!(!s.is_full(128));
    }

    #[test]
    fn single_bit_corruption_corrects_and_scrubs() {
        let mut s = Storage::new();
        s.write_u64(64, 0xdead_beef_cafe_f00d);
        s.corrupt_word(64, &[17]);
        assert_ne!(s.read_u64(64), 0xdead_beef_cafe_f00d, "fault landed");
        assert_eq!(s.corrupted_words(), 1);
        let decoded = s.ecc_decode(64);
        assert!(
            matches!(decoded, Some(Decoded::Corrected { data, .. }) if data == 0xdead_beef_cafe_f00d),
            "expected correction back to the written word, got {decoded:?}"
        );
        // Scrubbed: storage repaired, sidecar retired, next decode clean.
        assert_eq!(s.read_u64(64), 0xdead_beef_cafe_f00d);
        assert_eq!(s.corrupted_words(), 0);
        assert_eq!(s.ecc_decode(64), None);
    }

    #[test]
    fn double_bit_corruption_stays_poisoned() {
        let mut s = Storage::new();
        s.write_u64(8, 0x0123_4567_89ab_cdef);
        s.corrupt_word(8, &[3, 40]);
        assert_eq!(s.ecc_decode(8), Some(Decoded::Uncorrectable));
        // Still poisoned on a second read...
        assert_eq!(s.ecc_decode(8), Some(Decoded::Uncorrectable));
        // ...until an overwrite supersedes the corruption.
        s.write_u64(8, 77);
        assert_eq!(s.ecc_decode(8), None);
        assert_eq!(s.read_u64(8), 77);
    }

    #[test]
    fn snapshot_roundtrip_preserves_image_bits_and_sidecar() {
        let mut s = Storage::new();
        s.write(100, &[1, 2, 3, 4]);
        s.write(PAGE_BYTES * 3 + 7, &[9; 64]);
        s.set_full(128, true);
        s.set_full(4096, true);
        s.corrupt_word(64, &[5]);
        s.corrupt_word(8192, &[1, 2]);

        let mut w = Writer::new();
        s.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let mut restored = Storage::restore(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.read_vec(100, 4), s.read_vec(100, 4));
        assert_eq!(restored.read_u64(64), s.read_u64(64));
        assert!(restored.is_full(128) && restored.is_full(4096));
        assert!(!restored.is_full(136));
        assert_eq!(restored.corrupted_words(), 2);
        // The pending corruption still decodes identically post-restore.
        assert!(matches!(
            restored.ecc_decode(64),
            Some(Decoded::Corrected { .. })
        ));
        assert_eq!(restored.ecc_decode(8192), Some(Decoded::Uncorrectable));

        // Canonical bytes: re-encoding an identical image is bit-equal.
        let mut w2 = Writer::new();
        s.save(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
    }

    #[test]
    fn untouched_words_are_implicitly_clean() {
        let mut s = Storage::new();
        s.write_u64(0, 42);
        assert_eq!(s.ecc_decode(0), None);
        assert_eq!(s.corrupted_words(), 0);
    }
}

//! Per-bank DRAM state machine.

use crate::timing::DramTiming;
use crate::Cycle;
use vip_snap::{Reader, SnapError, Snapshot, Writer};

/// One DRAM bank: an optional open row plus the earliest cycles at which
/// the next ACTIVATE, column access, or PRECHARGE may legally issue.
///
/// Banks within a vault share data TSVs but have independent control
/// (§III-C: "each bank is also a rank"), so inter-bank constraints live in
/// the vault controller (shared data bus, tCCD) while intra-bank timing
/// (tRCD, tRAS, tRP, tWR) lives here.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bank {
    open_row: Option<u64>,
    earliest_act: Cycle,
    earliest_col: Cycle,
    earliest_pre: Cycle,
    /// Per-bank column-to-column spacing (tCCD). Banks are independent
    /// ranks in the HMC ("each bank is also a rank", §III-C), so tCCD
    /// does not serialize columns across banks — only the shared data
    /// TSVs do.
    next_col: Cycle,
}

impl Bank {
    /// A precharged, idle bank.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently open row, if any.
    #[must_use]
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Whether the bank is precharged (no open row).
    #[must_use]
    pub fn is_precharged(&self) -> bool {
        self.open_row.is_none()
    }

    /// Whether an ACTIVATE may issue at `now`.
    #[must_use]
    pub fn can_activate(&self, now: Cycle) -> bool {
        self.open_row.is_none() && now >= self.earliest_act
    }

    /// Whether the bank is precharged *and* past tRP, i.e. ready to take
    /// part in a refresh.
    #[must_use]
    pub fn refresh_ready(&self, now: Cycle) -> bool {
        self.can_activate(now)
    }

    /// Issues ACTIVATE for `row`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if [`can_activate`](Self::can_activate) is false.
    pub fn activate(&mut self, now: Cycle, row: u64, t: &DramTiming) {
        debug_assert!(self.can_activate(now));
        self.open_row = Some(row);
        self.earliest_col = now + t.t_rcd();
        self.earliest_pre = now + t.t_ras();
    }

    /// Whether a column command to `row` may issue at `now` (row open,
    /// past tRCD, and past the previous column's tCCD).
    #[must_use]
    pub fn can_access(&self, now: Cycle, row: u64) -> bool {
        self.open_row == Some(row) && now >= self.earliest_col && now >= self.next_col
    }

    /// Records a column command for tCCD spacing.
    pub fn column_issued(&mut self, now: Cycle, t: &DramTiming) {
        self.next_col = now + t.t_ccd();
    }

    /// Issues a read column command; `burst_end` is when the data burst
    /// finishes on the bus.
    pub fn access_read(&mut self, burst_end: Cycle, t: &DramTiming) {
        // Reads permit precharge once the data has left the array; model
        // as burst completion.
        self.earliest_pre = self.earliest_pre.max(burst_end);
        let _ = t;
    }

    /// Issues a write column command; the row must stay open tWR past the
    /// end of the data burst.
    pub fn access_write(&mut self, burst_end: Cycle, t: &DramTiming) {
        self.earliest_pre = self.earliest_pre.max(burst_end + t.t_wr());
    }

    /// Whether PRECHARGE may issue at `now`.
    #[must_use]
    pub fn can_precharge(&self, now: Cycle) -> bool {
        self.open_row.is_some() && now >= self.earliest_pre
    }

    /// Issues PRECHARGE.
    ///
    /// # Panics
    ///
    /// Panics (debug) if [`can_precharge`](Self::can_precharge) is false.
    pub fn precharge(&mut self, now: Cycle, t: &DramTiming) {
        debug_assert!(self.can_precharge(now));
        self.open_row = None;
        self.earliest_act = now + t.t_rp();
    }

    /// Schedules an automatic precharge to take effect at `when`
    /// (closed-page policy: the column command carries auto-precharge).
    pub fn auto_precharge_at(&mut self, when: Cycle, t: &DramTiming) {
        self.open_row = None;
        self.earliest_act = when + t.t_rp();
    }

    /// Blocks the bank until `until` (refresh).
    pub fn block_until(&mut self, until: Cycle) {
        debug_assert!(self.is_precharged());
        self.earliest_act = self.earliest_act.max(until);
    }

    /// First cycle at which a column command to the open row may issue
    /// (tRCD and tCCD both satisfied). Only meaningful while a row is
    /// open.
    #[must_use]
    pub fn earliest_column(&self) -> Cycle {
        self.earliest_col.max(self.next_col)
    }

    /// First cycle at which PRECHARGE may issue (tRAS/tWR satisfied).
    /// Only meaningful while a row is open.
    #[must_use]
    pub fn earliest_precharge(&self) -> Cycle {
        self.earliest_pre
    }

    /// First cycle at which ACTIVATE may issue (tRP satisfied). Only
    /// meaningful while the bank is precharged.
    #[must_use]
    pub fn earliest_activate(&self) -> Cycle {
        self.earliest_act
    }
}

impl Snapshot for Bank {
    fn save(&self, w: &mut Writer) {
        self.open_row.save(w);
        w.u64(self.earliest_act);
        w.u64(self.earliest_col);
        w.u64(self.earliest_pre);
        w.u64(self.next_col);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Bank {
            open_row: Option::restore(r)?,
            earliest_act: r.u64()?,
            earliest_col: r.u64()?,
            earliest_pre: r.u64()?,
            next_col: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::table_iii()
    }

    #[test]
    fn activate_then_access_honours_trcd() {
        let mut b = Bank::new();
        assert!(b.can_activate(0));
        b.activate(0, 42, &t());
        assert!(!b.can_access(0, 42));
        assert!(!b.can_access(t().t_rcd() - 1, 42));
        assert!(b.can_access(t().t_rcd(), 42));
        assert!(!b.can_access(t().t_rcd(), 43), "different row");
    }

    #[test]
    fn precharge_honours_tras_and_trp() {
        let mut b = Bank::new();
        b.activate(0, 1, &t());
        assert!(!b.can_precharge(t().t_ras() - 1));
        assert!(b.can_precharge(t().t_ras()));
        b.precharge(t().t_ras(), &t());
        assert!(b.is_precharged());
        assert!(!b.can_activate(t().t_ras() + t().t_rp() - 1));
        assert!(b.can_activate(t().t_ras() + t().t_rp()));
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut b = Bank::new();
        b.activate(0, 1, &t());
        let burst_end = 100;
        b.access_write(burst_end, &t());
        assert!(!b.can_precharge(burst_end + t().t_wr() - 1));
        assert!(b.can_precharge(burst_end + t().t_wr()));
    }

    #[test]
    fn auto_precharge_closes_row() {
        let mut b = Bank::new();
        b.activate(0, 1, &t());
        b.auto_precharge_at(50, &t());
        assert!(b.is_precharged());
        assert!(!b.can_activate(50 + t().t_rp() - 1));
        assert!(b.can_activate(50 + t().t_rp()));
    }

    #[test]
    fn refresh_blocking() {
        let mut b = Bank::new();
        b.block_until(500);
        assert!(!b.can_activate(499));
        assert!(b.can_activate(500));
    }
}

//! # vip-mem — cycle-level HMC-style 3D-stacked DRAM model
//!
//! The VIP paper couples its 128 processing engines to a Hybrid Memory
//! Cube-like 3D-stacked memory (§III-C) and evaluates it with DRAMSim2.
//! This crate is the from-scratch Rust equivalent of that substrate:
//!
//! * 32 vertical partitions (*vaults*), each with 16 DRAM banks, 65,536
//!   rows of 256 B per bank, and a 10 GB/s data path (320 GB/s aggregate);
//! * the timing parameters of Table III ([`DramTiming`]), expressed in the
//!   shared 0.8 ns clock;
//! * per-bank state machines honouring tRCD/tRP/tRAS/tWR/tCCD/tCL with
//!   FR-FCFS scheduling, [`RowPolicy::OpenPage`] or
//!   [`RowPolicy::ClosedPage`] row-buffer policies, and periodic refresh
//!   (tREFI/tRFC, including the DDR4 refresh-4x mode VIP uses);
//! * both address-mapping schemes the paper discusses
//!   ([`AddressMapping::VaultRowBankCol`] with the vault index in the high
//!   bits so PEs access their local vaults, and the HMC-default
//!   [`AddressMapping::LowInterleave`]);
//! * **execution-driven** data storage: reads return the bytes writes put
//!   there, and full-empty bits (§IV-A's synchronization variables) are
//!   honoured atomically at the vault controller;
//! * the configuration presets of the Figure 5 sensitivity study
//!   ([`MemConfig::closed_page`], `more_ranks`, `fewer_ranks`, `wide_row`,
//!   `narrow_row`, `refresh_2x`, `refresh_1x`).
//!
//! The top-level type is [`Hmc`]; callers enqueue [`MemRequest`]s per
//! vault and call [`Hmc::tick`] once per 0.8 ns cycle, collecting
//! [`MemResponse`]s.
//!
//! ```
//! use vip_mem::{Hmc, MemConfig, MemRequest};
//!
//! let mut hmc = Hmc::new(MemConfig::baseline());
//! hmc.host_write(0x40, &[1, 2, 3, 4]);
//! let vault = hmc.config().vault_of(0x40);
//! hmc.enqueue(vault, MemRequest::read(7, 0x40, 4)).unwrap();
//! let mut responses = Vec::new();
//! for _ in 0..200 {
//!     hmc.tick(&mut responses);
//! }
//! assert_eq!(responses.len(), 1);
//! assert_eq!(responses[0].data, vec![1, 2, 3, 4]);
//! ```

mod addr;
mod bank;
mod config;
mod controller;
mod hmc;
mod remap;
mod req;
mod stats;
mod storage;
mod timing;

pub use addr::{AddressMapping, DecodedAddr};
pub use config::{ConfigError, MemConfig, RowPolicy};
pub use controller::VaultController;
pub use hmc::Hmc;
pub use remap::BitShuffle;
pub use req::{MemRequest, MemResponse, QueueFullError, ReqId, RequestKind};
pub use stats::MemStats;
pub use storage::Storage;
pub use timing::{DramTiming, BASELINE_T_REFI_PS};

/// One clock cycle of the shared 1.25 GHz clock (0.8 ns), the simulator's
/// unit of time.
pub type Cycle = u64;

/// Picoseconds per clock cycle (0.8 ns at 1.25 GHz; Table III's tCK).
pub const CYCLE_PS: u64 = 800;

/// Converts a duration in picoseconds to cycles, rounding up.
#[must_use]
pub fn ps_to_cycles(ps: u64) -> Cycle {
    ps.div_ceil(CYCLE_PS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_conversion_rounds_up() {
        assert_eq!(ps_to_cycles(800), 1);
        assert_eq!(ps_to_cycles(801), 2);
        assert_eq!(ps_to_cycles(13_750), 18); // tCL = 13.75 ns
        assert_eq!(ps_to_cycles(0), 0);
    }
}

//! Memory-system statistics (bandwidth, row-buffer behaviour, latency).

use vip_snap::{Reader, SnapError, Snapshot, Writer};

/// Counters accumulated by a vault controller (and aggregated across the
/// stack by [`Hmc::stats`](crate::Hmc::stats)). Figure 5's achieved-
/// bandwidth axis comes straight from these counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// Completed read transactions.
    pub reads: u64,
    /// Completed write transactions.
    pub writes: u64,
    /// Bytes delivered to requesters.
    pub bytes_read: u64,
    /// Bytes accepted from requesters.
    pub bytes_written: u64,
    /// Column accesses that hit an already-open row.
    pub row_hits: u64,
    /// ACTIVATE commands issued to an idle (precharged) bank.
    pub row_misses: u64,
    /// PRECHARGE commands issued to close a conflicting open row.
    pub row_conflicts: u64,
    /// Refresh operations performed.
    pub refreshes: u64,
    /// Sum over completed transactions of (completion - enqueue) cycles.
    pub total_latency_cycles: u64,
    /// Cycles any transaction was outstanding in this vault (utilization
    /// proxy).
    pub busy_cycles: u64,
    /// Cycles elapsed (set by the owner on snapshot).
    pub elapsed_cycles: u64,
    /// Retention faults the injector landed on this vault's read path
    /// (each event is one corrupted word, single- or double-bit).
    pub retention_faults: u64,
    /// Single-bit errors SECDED corrected (and scrubbed) on reads.
    pub ecc_corrected: u64,
    /// Double-bit errors SECDED detected but could not correct; the
    /// matching responses went out poisoned.
    pub ecc_uncorrectable: u64,
}

impl MemStats {
    /// Completed transactions of either kind.
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total data moved in bytes.
    #[must_use]
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Mean transaction latency in cycles (0 if nothing completed).
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.transactions() == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.transactions() as f64
        }
    }

    /// Row-buffer hit rate over column accesses (0 if none).
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let accesses = self.row_hits + self.row_misses + self.row_conflicts;
        if accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / accesses as f64
        }
    }

    /// Achieved bandwidth in GB/s given the 0.8 ns cycle.
    #[must_use]
    pub fn bandwidth_gbs(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.bytes_total() as f64 / (self.elapsed_cycles as f64 * 0.8e-9) / 1e9
        }
    }

    /// Accumulates another counter set (for stack-wide aggregation;
    /// `elapsed_cycles` takes the maximum, counters add).
    pub fn merge(&mut self, other: &MemStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.refreshes += other.refreshes;
        self.total_latency_cycles += other.total_latency_cycles;
        self.busy_cycles += other.busy_cycles;
        self.elapsed_cycles = self.elapsed_cycles.max(other.elapsed_cycles);
        self.retention_faults += other.retention_faults;
        self.ecc_corrected += other.ecc_corrected;
        self.ecc_uncorrectable += other.ecc_uncorrectable;
    }
}

impl Snapshot for MemStats {
    fn save(&self, w: &mut Writer) {
        for v in [
            self.reads,
            self.writes,
            self.bytes_read,
            self.bytes_written,
            self.row_hits,
            self.row_misses,
            self.row_conflicts,
            self.refreshes,
            self.total_latency_cycles,
            self.busy_cycles,
            self.elapsed_cycles,
            self.retention_faults,
            self.ecc_corrected,
            self.ecc_uncorrectable,
        ] {
            w.u64(v);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(MemStats {
            reads: r.u64()?,
            writes: r.u64()?,
            bytes_read: r.u64()?,
            bytes_written: r.u64()?,
            row_hits: r.u64()?,
            row_misses: r.u64()?,
            row_conflicts: r.u64()?,
            refreshes: r.u64()?,
            total_latency_cycles: r.u64()?,
            busy_cycles: r.u64()?,
            elapsed_cycles: r.u64()?,
            retention_faults: r.u64()?,
            ecc_corrected: r.u64()?,
            ecc_uncorrectable: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = MemStats {
            reads: 3,
            writes: 1,
            bytes_read: 96,
            bytes_written: 32,
            row_hits: 3,
            row_misses: 1,
            total_latency_cycles: 400,
            elapsed_cycles: 1000,
            ..MemStats::default()
        };
        assert_eq!(s.transactions(), 4);
        assert_eq!(s.bytes_total(), 128);
        assert!((s.mean_latency() - 100.0).abs() < 1e-12);
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
        // 128 bytes over 800 ns = 0.16 GB/s.
        assert!((s.bandwidth_gbs() - 0.16).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counters_and_maxes_time() {
        let mut a = MemStats {
            reads: 1,
            elapsed_cycles: 10,
            ..MemStats::default()
        };
        let b = MemStats {
            reads: 2,
            elapsed_cycles: 5,
            ..MemStats::default()
        };
        a.merge(&b);
        assert_eq!(a.reads, 3);
        assert_eq!(a.elapsed_cycles, 10);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = MemStats::default();
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.bandwidth_gbs(), 0.0);
    }
}

//! The whole memory stack: 32 vault controllers over shared storage.

use crate::config::MemConfig;
use crate::controller::VaultController;
use crate::req::{MemRequest, MemResponse, QueueFullError};
use crate::stats::MemStats;
use crate::storage::Storage;
use crate::Cycle;
use vip_faults::DramFaultConfig;
use vip_snap::{Reader, SnapError, Snapshot, Writer};

/// The complete HMC-style memory stack (§III-C): all vault controllers
/// plus the shared execution-driven backing store.
///
/// The system simulator enqueues requests per vault (the on-chip network
/// decides which vault a request reaches) and calls [`tick`](Hmc::tick)
/// once per cycle. Host accessors ([`host_read`](Hmc::host_read) /
/// [`host_write`](Hmc::host_write)) bypass timing and are used to load
/// inputs and extract results.
#[derive(Debug)]
pub struct Hmc {
    cfg: MemConfig,
    storage: Storage,
    vaults: Vec<VaultController>,
}

impl Hmc {
    /// Builds the stack described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MemConfig::validate`].
    #[must_use]
    pub fn new(cfg: MemConfig) -> Self {
        cfg.validate().expect("valid memory configuration");
        let vaults = (0..cfg.vaults)
            .map(|v| VaultController::new(v, cfg.clone()))
            .collect();
        Hmc {
            cfg,
            storage: Storage::new(),
            vaults,
        }
    }

    /// The configuration this stack was built with.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Whether `vault` can accept another transaction this cycle.
    #[must_use]
    pub fn can_accept(&self, vault: usize) -> bool {
        self.vaults[vault].can_accept()
    }

    /// Queued (unissued) transactions at `vault` — the hang watchdog
    /// reports these depths.
    #[must_use]
    pub fn pending(&self, vault: usize) -> usize {
        self.vaults[vault].pending()
    }

    /// Wires (or removes) DRAM retention-fault injection on every vault
    /// at runtime — the system-level fault plumbing uses this so tests
    /// can arm an existing machine without rebuilding its config.
    pub fn set_faults(&mut self, faults: Option<DramFaultConfig>) {
        self.cfg.faults = faults;
        for vault in &mut self.vaults {
            vault.set_faults(faults);
        }
    }

    /// Enqueues `req` at `vault`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] when the vault's transaction queue is
    /// full.
    ///
    /// # Panics
    ///
    /// Panics if `req` maps to a different vault than `vault` (a routing
    /// bug) or crosses a column boundary.
    pub fn enqueue(&mut self, vault: usize, req: MemRequest) -> Result<(), QueueFullError> {
        self.vaults[vault].enqueue(req)
    }

    /// Advances every vault one cycle, appending completions (tagged with
    /// their vault via [`MemResponse::addr`] decoding if needed) to
    /// `responses`.
    pub fn tick(&mut self, responses: &mut Vec<MemResponse>) {
        for vault in &mut self.vaults {
            vault.tick(&mut self.storage, responses);
        }
    }

    /// Advances every vault one cycle, invoking `sink(vault, response)`
    /// per completion — the form the system simulator uses to route
    /// completions onto the network at the right vault.
    pub fn tick_with(&mut self, mut sink: impl FnMut(usize, MemResponse)) {
        let mut buf = Vec::new();
        for (v, vault) in self.vaults.iter_mut().enumerate() {
            vault.tick(&mut self.storage, &mut buf);
            for resp in buf.drain(..) {
                sink(v, resp);
            }
        }
    }

    /// Whether every vault has drained all queued and in-flight work.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.vaults.iter().all(VaultController::is_idle)
    }

    /// A sound lower bound on the next cycle any vault can act (see
    /// [`VaultController::next_event`]). Always `Some`: refresh fires
    /// every tREFI even when the stack is idle.
    #[must_use]
    pub fn next_event(&self) -> Option<Cycle> {
        self.vaults
            .iter()
            .filter_map(|v| v.next_event(&self.storage))
            .min()
    }

    /// Jumps every vault's clock to `to`, replaying per-cycle counters
    /// (see [`VaultController::skip_to`]).
    pub fn skip_to(&mut self, to: Cycle) {
        for vault in &mut self.vaults {
            vault.skip_to(to);
        }
    }

    /// Jumps the clock of the (idle) stack far forward, crediting
    /// skipped refreshes on schedule (see
    /// [`VaultController::advance_idle`]).
    pub fn advance_idle(&mut self, to: Cycle) {
        for vault in &mut self.vaults {
            vault.advance_idle(to);
        }
    }

    /// Direct access to the backing store. Zero-time like the host
    /// accessors; the functional execution tier reads through this
    /// without per-call allocation.
    #[must_use]
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Direct mutable access to the backing store (functional-tier
    /// stores; bypasses all timing, like [`host_write`](Self::host_write)).
    pub fn storage_mut(&mut self) -> &mut Storage {
        &mut self.storage
    }

    /// Zero-time host read (initialization / result extraction).
    #[must_use]
    pub fn host_read(&self, addr: u64, len: usize) -> Vec<u8> {
        self.storage.read_vec(addr, len)
    }

    /// Zero-time host write.
    pub fn host_write(&mut self, addr: u64, data: &[u8]) {
        self.storage.write(addr, data);
    }

    /// Zero-time read of a 64-bit word.
    #[must_use]
    pub fn host_read_u64(&self, addr: u64) -> u64 {
        self.storage.read_u64(addr)
    }

    /// Zero-time write of a 64-bit word.
    pub fn host_write_u64(&mut self, addr: u64, value: u64) {
        self.storage.write_u64(addr, value);
    }

    /// Host access to a word's full-empty bit.
    #[must_use]
    pub fn host_is_full(&self, addr: u64) -> bool {
        self.storage.is_full(addr)
    }

    /// Host control of a word's full-empty bit.
    pub fn host_set_full(&mut self, addr: u64, full: bool) {
        self.storage.set_full(addr, full);
    }

    /// Per-vault statistics.
    #[must_use]
    pub fn vault_stats(&self, vault: usize) -> MemStats {
        self.vaults[vault].stats()
    }

    /// Stack-wide aggregated statistics.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        let mut total = MemStats::default();
        for v in &self.vaults {
            total.merge(&v.stats());
        }
        total
    }

    /// Serializes the whole stack's mutable state: the backing store
    /// (data pages, full-empty bits, the ECC sidecar), every vault
    /// controller, and the stack-level fault configuration.
    pub fn save_state(&self, w: &mut Writer) {
        self.storage.save(w);
        w.usize(self.vaults.len());
        for vault in &self.vaults {
            vault.save_state(w);
        }
        self.cfg.faults.save(w);
    }

    /// Restores state saved by [`save_state`](Self::save_state) onto a
    /// stack freshly built with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on decode failure or a vault-count
    /// mismatch.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.storage = Storage::restore(r)?;
        let vaults = r.usize()?;
        if vaults != self.vaults.len() {
            return Err(SnapError::Corrupt("vault count mismatch"));
        }
        for vault in &mut self.vaults {
            vault.restore_state(r)?;
        }
        self.cfg.faults = Option::restore(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::MemRequest;

    #[test]
    fn requests_fan_out_across_vaults() {
        let cfg = MemConfig::baseline();
        let mut hmc = Hmc::new(cfg.clone());
        for v in 0..cfg.vaults {
            let addr = cfg.vault_base(v);
            hmc.host_write(addr, &[v as u8; 32]);
            hmc.enqueue(v, MemRequest::read(v as u64, addr, 32))
                .unwrap();
        }
        let mut responses = Vec::new();
        for _ in 0..500 {
            hmc.tick(&mut responses);
            if hmc.is_idle() {
                break;
            }
        }
        assert_eq!(responses.len(), cfg.vaults);
        for r in &responses {
            assert_eq!(r.data, vec![r.id as u8; 32]);
        }
        let s = hmc.stats();
        assert_eq!(s.reads, cfg.vaults as u64);
        assert_eq!(s.bytes_read, 32 * cfg.vaults as u64);
    }

    #[test]
    fn tick_with_reports_source_vault() {
        let cfg = MemConfig::baseline();
        let mut hmc = Hmc::new(cfg.clone());
        let addr = cfg.vault_base(3) + 64;
        hmc.enqueue(3, MemRequest::read(9, addr, 16)).unwrap();
        let mut seen = Vec::new();
        for _ in 0..500 {
            hmc.tick_with(|v, r| seen.push((v, r.id)));
            if hmc.is_idle() {
                break;
            }
        }
        assert_eq!(seen, vec![(3, 9)]);
    }

    #[test]
    fn host_accessors_roundtrip() {
        let mut hmc = Hmc::new(MemConfig::baseline());
        hmc.host_write_u64(4096, 42);
        assert_eq!(hmc.host_read_u64(4096), 42);
        hmc.host_set_full(4096, true);
        assert!(hmc.host_is_full(4096));
    }
}

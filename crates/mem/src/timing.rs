//! DRAM timing parameters (Table III).

use crate::{ps_to_cycles, Cycle};

/// DRAM timing parameters, stored in picoseconds.
///
/// Defaults come from the paper's Table III (derived from Kim et al.'s
/// HMC parameters with VIP's modifications: open page, vault-high address
/// mapping, refresh-4x). The refresh parameters tREFI/tRFC scale together
/// in the Figure 5 sensitivity study ([`DramTiming::with_refresh_scale`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Column access strobe latency (read data delay after a column
    /// command), ps. Table III: 13.75 ns.
    pub t_cl_ps: u64,
    /// Row-to-column delay (data access after ACTIVATE), ps. 13.75 ns.
    pub t_rcd_ps: u64,
    /// Row precharge time, ps. 13.75 ns.
    pub t_rp_ps: u64,
    /// Minimum row-active time (ACTIVATE to PRECHARGE), ps. 27.5 ns.
    pub t_ras_ps: u64,
    /// Write recovery time (end of write burst to PRECHARGE), ps. 15 ns.
    pub t_wr_ps: u64,
    /// Column-to-column command delay, ps. 5 ns.
    pub t_ccd_ps: u64,
    /// Refresh cycle time (duration of one refresh), ps. 81.5 ns in the
    /// refresh-4x mode VIP uses.
    pub t_rfc_ps: u64,
    /// Refresh interval, ps. 1.95 µs (refresh-4x; JEDEC DDR4 normal mode
    /// is 7.8 µs).
    pub t_refi_ps: u64,
}

/// Table III's tREFI — the reference point retention-fault rates are
/// specified against ([`crate::MemConfig::faults`] scales with the
/// configured tREFI relative to this).
pub const BASELINE_T_REFI_PS: u64 = 1_950_000;

impl DramTiming {
    /// The paper's Table III values (refresh-4x mode).
    #[must_use]
    pub fn table_iii() -> Self {
        DramTiming {
            t_cl_ps: 13_750,
            t_rcd_ps: 13_750,
            t_rp_ps: 13_750,
            t_ras_ps: 27_500,
            t_wr_ps: 15_000,
            t_ccd_ps: 5_000,
            t_rfc_ps: 81_500,
            t_refi_ps: 1_950_000,
        }
    }

    /// Scales both tRFC and tREFI by `factor` — the paper's "refresh 2x"
    /// (`factor = 2`) and "refresh 1x" (`factor = 4`) configurations,
    /// which move from DDR4 refresh-4x back toward the standard rate
    /// (§VI-C).
    #[must_use]
    pub fn with_refresh_scale(mut self, factor: u64) -> Self {
        self.t_rfc_ps *= factor;
        self.t_refi_ps *= factor;
        self
    }

    /// tCL in cycles.
    #[must_use]
    pub fn t_cl(&self) -> Cycle {
        ps_to_cycles(self.t_cl_ps)
    }

    /// tRCD in cycles.
    #[must_use]
    pub fn t_rcd(&self) -> Cycle {
        ps_to_cycles(self.t_rcd_ps)
    }

    /// tRP in cycles.
    #[must_use]
    pub fn t_rp(&self) -> Cycle {
        ps_to_cycles(self.t_rp_ps)
    }

    /// tRAS in cycles.
    #[must_use]
    pub fn t_ras(&self) -> Cycle {
        ps_to_cycles(self.t_ras_ps)
    }

    /// tWR in cycles.
    #[must_use]
    pub fn t_wr(&self) -> Cycle {
        ps_to_cycles(self.t_wr_ps)
    }

    /// tCCD in cycles.
    #[must_use]
    pub fn t_ccd(&self) -> Cycle {
        ps_to_cycles(self.t_ccd_ps)
    }

    /// tRFC in cycles.
    #[must_use]
    pub fn t_rfc(&self) -> Cycle {
        ps_to_cycles(self.t_rfc_ps)
    }

    /// tREFI in cycles (rounded down: refreshing slightly early is safe).
    #[must_use]
    pub fn t_refi(&self) -> Cycle {
        self.t_refi_ps / crate::CYCLE_PS
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::table_iii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_cycle_values() {
        let t = DramTiming::table_iii();
        assert_eq!(t.t_cl(), 18);
        assert_eq!(t.t_rcd(), 18);
        assert_eq!(t.t_rp(), 18);
        assert_eq!(t.t_ras(), 35);
        assert_eq!(t.t_wr(), 19);
        assert_eq!(t.t_ccd(), 7);
        assert_eq!(t.t_rfc(), 102);
        assert_eq!(t.t_refi(), 2437);
    }

    #[test]
    fn refresh_scaling() {
        let t2 = DramTiming::table_iii().with_refresh_scale(2);
        assert_eq!(t2.t_rfc_ps, 163_000);
        assert_eq!(t2.t_refi_ps, 3_900_000);
        let t4 = DramTiming::table_iii().with_refresh_scale(4);
        assert_eq!(t4.t_refi_ps, 7_800_000); // back to JEDEC 7.8 us
    }
}

//! Logical-to-physical address remapping (§III-C).
//!
//! The paper notes that if VIP sits *outside* the memory stack, its
//! vault-high interleaving "may be changed using a logical to physical
//! address translation. This is simpler than virtual memory, as the
//! mapping is known statically and involves shuffling some bits in
//! memory requests." [`BitShuffle`] is that mechanism: a static
//! permutation of address bits applied to every request, able to turn
//! the HMC's default low-order vault interleave into VIP's vault-high
//! view (and back).

/// A static permutation of the low `width` address bits.
///
/// `perm[i]` gives the *logical* bit index that supplies *physical* bit
/// `i`. Bits above `width` pass through unchanged.
///
/// ```
/// use vip_mem::BitShuffle;
///
/// // Swap bits 0 and 1 of the block index (bits 5 and 6 of the byte
/// // address, above a 32-byte offset).
/// let shuffle = BitShuffle::new(vec![1, 0], 5);
/// assert_eq!(shuffle.apply(0b01_00000), 0b10_00000);
/// assert_eq!(shuffle.apply(0b10_00000), 0b01_00000);
/// assert_eq!(shuffle.invert().apply(shuffle.apply(12345)), 12345);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitShuffle {
    perm: Vec<u32>,
    low_bits: u32,
}

impl BitShuffle {
    /// A permutation of `perm.len()` bits starting at bit `low_bits`
    /// (bits below `low_bits` — the intra-column offset — never move).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..perm.len()`.
    #[must_use]
    pub fn new(perm: Vec<u32>, low_bits: u32) -> Self {
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            assert!(
                (p as usize) < perm.len() && !seen[p as usize],
                "perm must be a permutation of 0..{}",
                perm.len()
            );
            seen[p as usize] = true;
        }
        BitShuffle { perm, low_bits }
    }

    /// The identity shuffle.
    #[must_use]
    pub fn identity() -> Self {
        BitShuffle {
            perm: Vec::new(),
            low_bits: 0,
        }
    }

    /// The shuffle that converts VIP's logical vault-high addresses into
    /// physical low-interleaved HMC addresses: the top `vault_bits` of a
    /// `total_bits`-wide block index move to the bottom.
    ///
    /// With this remap installed, software laid out for contiguous
    /// per-vault regions runs unchanged on a stock low-interleaved HMC.
    #[must_use]
    pub fn vault_high_to_low(vault_bits: u32, total_bits: u32, offset_bits: u32) -> Self {
        assert!(vault_bits <= total_bits);
        // Physical bit i takes logical bit perm[i]:
        // low vault_bits     <- logical top bits (the vault index)
        // remaining          <- logical low bits, shifted up
        let mut perm = Vec::with_capacity(total_bits as usize);
        for i in 0..vault_bits {
            perm.push(total_bits - vault_bits + i);
        }
        for i in 0..total_bits - vault_bits {
            perm.push(i);
        }
        BitShuffle::new(perm, offset_bits)
    }

    /// Applies the shuffle to a byte address.
    #[must_use]
    pub fn apply(&self, addr: u64) -> u64 {
        if self.perm.is_empty() {
            return addr;
        }
        let width = self.perm.len() as u32;
        let low_mask = (1u64 << self.low_bits) - 1;
        let field_mask = ((1u64 << width) - 1) << self.low_bits;
        let field = (addr & field_mask) >> self.low_bits;
        let mut out = 0u64;
        for (i, &src) in self.perm.iter().enumerate() {
            out |= ((field >> src) & 1) << i;
        }
        (addr & !(field_mask | low_mask)) | (out << self.low_bits) | (addr & low_mask)
    }

    /// The inverse permutation.
    #[must_use]
    pub fn invert(&self) -> Self {
        let mut inv = vec![0u32; self.perm.len()];
        for (i, &p) in self.perm.iter().enumerate() {
            inv[p as usize] = i as u32;
        }
        BitShuffle {
            perm: inv,
            low_bits: self.low_bits,
        }
    }
}

impl Default for BitShuffle {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AddressMapping, MemConfig};

    #[test]
    fn identity_is_a_no_op() {
        let id = BitShuffle::identity();
        for a in [0u64, 1, 12345, u64::MAX] {
            assert_eq!(id.apply(a), a);
        }
    }

    #[test]
    fn inverse_roundtrips() {
        let s = BitShuffle::new(vec![2, 0, 3, 1], 5);
        let inv = s.invert();
        for a in 0..4096u64 {
            assert_eq!(inv.apply(s.apply(a)), a);
            assert_eq!(s.apply(inv.apply(a)), a);
        }
    }

    #[test]
    fn offset_bits_never_move() {
        let s = BitShuffle::new(vec![1, 0], 5);
        for a in 0..32u64 {
            assert_eq!(s.apply(a), a, "intra-column offsets are stable");
        }
    }

    #[test]
    fn vault_high_remap_matches_the_two_mappings() {
        // Remapping a vault-high logical address must land it on the
        // same (vault, bank, row, col) that the low-interleave mapping
        // assigns — the §III-C translation between VIP's view and the
        // stock HMC's.
        let cfg = MemConfig::baseline();
        let total_bits = (cfg.total_bytes() / cfg.col_bytes as u64).trailing_zeros();
        let vault_bits = (cfg.vaults as u64).trailing_zeros();
        let offset_bits = (cfg.col_bytes as u64).trailing_zeros();
        let shuffle = BitShuffle::vault_high_to_low(vault_bits, total_bits, offset_bits);

        for logical in [
            0u64,
            32,
            4096,
            256 << 20,
            (256 << 20) + 64,
            5 * (256 << 20) + 997 * 32,
        ] {
            let high = AddressMapping::VaultRowBankCol.decode(&cfg, logical);
            let low = AddressMapping::LowInterleave.decode(&cfg, shuffle.apply(logical));
            assert_eq!(high.vault, low.vault, "addr {logical:#x}");
            assert_eq!(high.offset, low.offset);
        }
    }
}

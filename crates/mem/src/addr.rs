//! Physical address interleaving schemes (§III-C).

use crate::config::MemConfig;
use vip_snap::{Reader, SnapError, Snapshot, Writer};

/// A physical address decomposed into DRAM coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddr {
    /// Vault index.
    pub vault: usize,
    /// Bank index within the vault.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column index within the row.
    pub col: u64,
    /// Byte offset within the column.
    pub offset: u64,
}

impl Snapshot for DecodedAddr {
    fn save(&self, w: &mut Writer) {
        w.usize(self.vault);
        w.usize(self.bank);
        w.u64(self.row);
        w.u64(self.col);
        w.u64(self.offset);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(DecodedAddr {
            vault: r.usize()?,
            bank: r.usize()?,
            row: r.u64()?,
            col: r.u64()?,
            offset: r.u64()?,
        })
    }
}

/// Address-interleaving scheme.
///
/// The default HMC scheme indexes vaults with *low* address bits, which
/// maximizes parallelism for an external host streaming through memory.
/// VIP instead puts the vault index in the *most significant* bits so
/// that each PE can allocate data wholly inside its local vault and keep
/// traffic off the on-chip network (§III-C). The paper notes this is a
/// static bit shuffle, simpler than virtual memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressMapping {
    /// `vault : row : bank : col : offset` — VIP's scheme (Table III
    /// "vault-row-bank-col"): vault in the high bits, so each vault owns
    /// a contiguous region; consecutive columns stay in one row (good for
    /// open-page streaming), and consecutive rows rotate banks.
    #[default]
    VaultRowBankCol,
    /// `row : bank : col : vault : offset` — the HMC-default scheme with
    /// the vault index in the low bits just above the column offset.
    LowInterleave,
}

impl AddressMapping {
    /// Decomposes `addr` into DRAM coordinates under `cfg`'s geometry.
    ///
    /// Addresses wrap modulo total capacity (high bits beyond the
    /// configured geometry are ignored).
    #[must_use]
    pub fn decode(self, cfg: &MemConfig, addr: u64) -> DecodedAddr {
        let cols_per_row = (cfg.row_bytes / cfg.col_bytes) as u64;
        let col_bits = cols_per_row.trailing_zeros();
        let bank_bits = (cfg.banks_per_vault as u64).trailing_zeros();
        let row_bits = (cfg.rows_per_bank as u64).trailing_zeros();
        let vault_bits = (cfg.vaults as u64).trailing_zeros();
        let offset = addr % cfg.col_bytes as u64;
        let block = addr / cfg.col_bytes as u64;
        match self {
            AddressMapping::VaultRowBankCol => {
                // low → high: col, bank, row, vault
                let col = block & (cols_per_row - 1);
                let bank = (block >> col_bits) & (cfg.banks_per_vault as u64 - 1);
                let row = (block >> (col_bits + bank_bits)) & (cfg.rows_per_bank as u64 - 1);
                let vault = (block >> (col_bits + bank_bits + row_bits)) & (cfg.vaults as u64 - 1);
                DecodedAddr {
                    vault: vault as usize,
                    bank: bank as usize,
                    row,
                    col,
                    offset,
                }
            }
            AddressMapping::LowInterleave => {
                // low → high: vault, col, bank, row
                let vault = block & (cfg.vaults as u64 - 1);
                let col = (block >> vault_bits) & (cols_per_row - 1);
                let bank = (block >> (vault_bits + col_bits)) & (cfg.banks_per_vault as u64 - 1);
                let row =
                    (block >> (vault_bits + col_bits + bank_bits)) & (cfg.rows_per_bank as u64 - 1);
                DecodedAddr {
                    vault: vault as usize,
                    bank: bank as usize,
                    row,
                    col,
                    offset,
                }
            }
        }
    }

    /// Recomposes DRAM coordinates into a physical address (the inverse
    /// of [`decode`](Self::decode)).
    #[must_use]
    pub fn encode(self, cfg: &MemConfig, d: DecodedAddr) -> u64 {
        let cols_per_row = (cfg.row_bytes / cfg.col_bytes) as u64;
        let col_bits = cols_per_row.trailing_zeros();
        let bank_bits = (cfg.banks_per_vault as u64).trailing_zeros();
        let row_bits = (cfg.rows_per_bank as u64).trailing_zeros();
        let vault_bits = (cfg.vaults as u64).trailing_zeros();
        let block = match self {
            AddressMapping::VaultRowBankCol => {
                d.col
                    | ((d.bank as u64) << col_bits)
                    | (d.row << (col_bits + bank_bits))
                    | ((d.vault as u64) << (col_bits + bank_bits + row_bits))
            }
            AddressMapping::LowInterleave => {
                (d.vault as u64)
                    | (d.col << vault_bits)
                    | ((d.bank as u64) << (vault_bits + col_bits))
                    | (d.row << (vault_bits + col_bits + bank_bits))
            }
        };
        block * cfg.col_bytes as u64 + d.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vault_high_keeps_vault_regions_contiguous() {
        let cfg = MemConfig::baseline();
        let m = AddressMapping::VaultRowBankCol;
        let vault_bytes = cfg.vault_bytes();
        for v in [0u64, 1, 7, 31] {
            let lo = m.decode(&cfg, v * vault_bytes);
            let hi = m.decode(&cfg, (v + 1) * vault_bytes - 1);
            assert_eq!(lo.vault as u64, v);
            assert_eq!(hi.vault as u64, v);
        }
    }

    #[test]
    fn low_interleave_rotates_vaults_per_column() {
        let cfg = MemConfig {
            mapping: AddressMapping::LowInterleave,
            ..MemConfig::baseline()
        };
        let m = AddressMapping::LowInterleave;
        assert_eq!(m.decode(&cfg, 0).vault, 0);
        assert_eq!(m.decode(&cfg, 32).vault, 1);
        assert_eq!(m.decode(&cfg, 32 * 31).vault, 31);
        assert_eq!(m.decode(&cfg, 32 * 32).vault, 0);
    }

    #[test]
    fn sequential_columns_share_a_row_under_vault_high() {
        let cfg = MemConfig::baseline();
        let m = AddressMapping::VaultRowBankCol;
        let a = m.decode(&cfg, 0);
        let b = m.decode(&cfg, 32);
        let c = m.decode(&cfg, 224);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_eq!(b.col, 1);
        assert_eq!(c.col, 7);
        // The next column rolls into the next bank (bank rotation).
        let d = m.decode(&cfg, 256);
        assert_eq!(d.bank, a.bank + 1);
        assert_eq!(d.row, a.row);
    }

    #[test]
    fn encode_is_inverse_of_decode() {
        for cfg in [
            MemConfig::baseline(),
            MemConfig::wide_row(),
            MemConfig::narrow_row(),
            MemConfig::more_ranks(),
            MemConfig::fewer_ranks(),
        ] {
            for mapping in [
                AddressMapping::VaultRowBankCol,
                AddressMapping::LowInterleave,
            ] {
                for addr in [0u64, 31, 32, 1000, 123_456_789, cfg.total_bytes() - 1] {
                    let d = mapping.decode(&cfg, addr);
                    assert_eq!(
                        mapping.encode(&cfg, d),
                        addr,
                        "{mapping:?} {} addr {addr}",
                        cfg.name
                    );
                }
            }
        }
    }
}

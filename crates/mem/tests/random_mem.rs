//! Seeded-random tests for the DRAM model: data integrity under random
//! traffic, conservation of requests, and policy invariants. Failures
//! print their seed and re-run alone under `VIP_TEST_SEED`.

use vip_mem::{Hmc, MemConfig, MemRequest, MemResponse};
use vip_rng::{for_each_seed, SplitMix64};

/// A randomly generated plain transaction (no full-empty).
#[derive(Debug, Clone)]
enum Op {
    Write {
        addr_col: u64,
        offset: u8,
        data: Vec<u8>,
    },
    Read {
        addr_col: u64,
        offset: u8,
        len: u8,
    },
}

fn random_op(rng: &mut SplitMix64, cols: u64) -> Op {
    let c = rng.below(cols);
    let off = (rng.below(32) as u8).min(31);
    if rng.bool() {
        let len = rng.usize_in(1..32);
        let mut data = rng.bytes(len);
        data.truncate(32 - off as usize);
        Op::Write {
            addr_col: c,
            offset: off,
            data,
        }
    } else {
        let len = rng.usize_in(1..32) as u8;
        Op::Read {
            addr_col: c,
            offset: off,
            len: len.min(32 - off),
        }
    }
}

fn drain(hmc: &mut Hmc, limit: u64) -> Vec<MemResponse> {
    let mut out = Vec::new();
    for _ in 0..limit {
        hmc.tick(&mut out);
        if hmc.is_idle() {
            return out;
        }
    }
    panic!("memory did not drain in {limit} cycles");
}

/// Reads always return exactly what the most recent overlapping
/// write (in submission order) put there, under every Figure 5
/// configuration — the address-overlap ordering invariant.
#[test]
fn reads_see_program_order_writes() {
    for_each_seed("reads_see_program_order_writes", 0x0edd, 16, |seed| {
        let mut rng = SplitMix64::new(seed);
        let cfg_idx = rng.usize_in(0..8);
        let cfg = MemConfig::figure5_sweep()[cfg_idx].clone();
        let mut hmc = Hmc::new(cfg);
        let mut shadow = vec![0u8; 64 * 32];
        let mut expected: Vec<(u64, Vec<u8>)> = Vec::new();
        let n_ops = rng.usize_in(1..40);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng, 64)).collect();
        let mut responses: Vec<MemResponse> = Vec::new();
        for (id, op) in (0u64..).zip(&ops) {
            // Stall until the queue accepts (mirrors NoC back-pressure).
            let req = match op {
                Op::Write {
                    addr_col,
                    offset,
                    data,
                } => {
                    let addr = addr_col * 32 + u64::from(*offset);
                    shadow[addr as usize..addr as usize + data.len()].copy_from_slice(data);
                    MemRequest::write(id, addr, data.clone())
                }
                Op::Read {
                    addr_col,
                    offset,
                    len,
                } => {
                    let addr = addr_col * 32 + u64::from(*offset);
                    let want = shadow[addr as usize..addr as usize + *len as usize].to_vec();
                    expected.push((id, want));
                    MemRequest::read(id, addr, *len as usize)
                }
            };
            let mut accepted = false;
            for _ in 0..100_000 {
                if hmc.enqueue(0, req.clone()).is_ok() {
                    accepted = true;
                    break;
                }
                // Queue full: give the controller a cycle (keeping any
                // completions that retire meanwhile).
                hmc.tick(&mut responses);
            }
            assert!(accepted, "queue never drained");
        }
        responses.extend(drain(&mut hmc, 2_000_000));
        responses.sort_by_key(|r| r.id);
        for (id, want) in expected {
            let got = responses
                .iter()
                .find(|r| r.id == id)
                .expect("response arrived");
            assert_eq!(&got.data, &want, "read {id}");
        }
    });
}

/// Every enqueued request gets exactly one response, and counters
/// conserve: responses = reads + writes in the stats.
#[test]
fn requests_are_conserved() {
    for_each_seed("requests_are_conserved", 0xc09, 16, |seed| {
        let mut rng = SplitMix64::new(seed);
        let n_reads = rng.usize_in(1..30);
        let n_writes = rng.usize_in(0..30);
        let mut hmc = Hmc::new(MemConfig::baseline());
        let mut sent = 0u64;
        let mut responses: Vec<MemResponse> = Vec::new();
        for i in 0..n_reads {
            while hmc
                .enqueue(0, MemRequest::read(sent, (i as u64 % 64) * 32, 32))
                .is_err()
            {
                hmc.tick(&mut responses);
            }
            sent += 1;
        }
        for i in 0..n_writes {
            while hmc
                .enqueue(
                    0,
                    MemRequest::write(sent, (i as u64 % 64) * 32, vec![7; 32]),
                )
                .is_err()
            {
                hmc.tick(&mut responses);
            }
            sent += 1;
        }
        responses.extend(drain(&mut hmc, 1_000_000));
        assert_eq!(responses.len() as u64, sent);
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, sent, "no duplicated responses");
        let s = hmc.stats();
        assert_eq!(s.reads, n_reads as u64);
        assert_eq!(s.writes, n_writes as u64);
    });
}

/// The closed-page policy never produces row hits; the open-page
/// policy produces at least one hit on a same-row burst.
#[test]
fn page_policy_hit_invariants() {
    for cols in 2u64..8 {
        for (cfg, expect_hits) in [
            (MemConfig::baseline(), true),
            (MemConfig::closed_page(), false),
        ] {
            let mut hmc = Hmc::new(cfg);
            for c in 0..cols {
                hmc.enqueue(0, MemRequest::read(c, c * 32, 32)).unwrap();
            }
            drain(&mut hmc, 500_000);
            let hits = hmc.stats().row_hits;
            if expect_hits {
                assert!(hits > 0, "open page should hit on a {cols}-column burst");
            } else {
                assert_eq!(hits, 0, "closed page never hits");
            }
        }
    }
}

/// Full-empty tokens ping-pong correctly: N store/load pairs always
/// settle with the word empty and the last stored value read.
#[test]
fn full_empty_pairs_settle() {
    for n in 1u64..10 {
        let mut hmc = Hmc::new(MemConfig::baseline());
        let addr = 1024;
        let mut id = 0;
        for i in 0..n {
            hmc.enqueue(0, MemRequest::fe_store(id, addr, 100 + i))
                .unwrap();
            id += 1;
            hmc.enqueue(0, MemRequest::fe_load(id, addr)).unwrap();
            id += 1;
        }
        let responses = drain(&mut hmc, 1_000_000);
        assert_eq!(responses.len() as u64, 2 * n);
        assert!(!hmc.host_is_full(addr));
        // Each load observed the store that preceded it.
        for i in 0..n {
            let load = responses.iter().find(|r| r.id == 2 * i + 1).unwrap();
            let v = u64::from_le_bytes(load.data.clone().try_into().unwrap());
            assert_eq!(v, 100 + i);
        }
    }
}

//! Property-based tests for the torus: delivery, conservation, latency
//! bounds, and routing invariants under random traffic.

use proptest::prelude::*;
use vip_noc::{Torus, TorusConfig};

#[derive(Debug, Clone, Copy)]
struct Msg {
    src: usize,
    dst: usize,
    bytes: usize,
    tag: u64,
}

fn msg_strategy(nodes: usize) -> impl Strategy<Value = Msg> {
    (0..nodes, 0..nodes, 1usize..64, any::<u64>())
        .prop_map(|(src, dst, bytes, tag)| Msg { src, dst, bytes, tag })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every injected packet is delivered exactly once, at its
    /// destination, payload intact.
    #[test]
    fn all_packets_delivered_once(msgs in proptest::collection::vec(msg_strategy(32), 1..60)) {
        let mut net: Torus<u64> = Torus::new(TorusConfig::vip());
        let mut pending = msgs.clone();
        let mut delivered = Vec::new();
        let mut cycles = 0u64;
        while !pending.is_empty() || !net.is_idle() {
            if let Some(m) = pending.first().copied() {
                if net.inject(m.src, m.dst, m.bytes, m.tag).is_ok() {
                    pending.remove(0);
                }
            }
            net.tick();
            while let Some((node, pkt)) = net.pop_delivered() {
                delivered.push((node, pkt));
            }
            cycles += 1;
            prop_assert!(cycles < 1_000_000, "network wedged");
        }
        prop_assert_eq!(delivered.len(), msgs.len());
        // Multiset match on (dst, tag).
        let mut got: Vec<(usize, u64)> =
            delivered.iter().map(|(n, p)| (*n, p.payload)).collect();
        let mut want: Vec<(usize, u64)> = msgs.iter().map(|m| (m.dst, m.tag)).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        for (node, pkt) in &delivered {
            prop_assert_eq!(*node, pkt.dst, "delivered at the destination");
        }
    }

    /// An uncontended packet's latency is exactly serialization +
    /// hop_latency × hops (the analytical model the paper's 3-cycle-hop
    /// claim implies).
    #[test]
    fn uncontended_latency_is_analytic(src in 0usize..32, dst in 0usize..32, bytes in 1usize..128) {
        let cfg = TorusConfig::vip();
        let mut net: Torus<u64> = Torus::new(cfg);
        net.inject(src, dst, bytes, 1).unwrap();
        let mut cycles = 0;
        while !net.is_idle() {
            net.tick();
            cycles += 1;
            prop_assert!(cycles < 10_000);
        }
        let s = net.stats();
        let hops = net.hops_between(src, dst) as u64;
        let expect = cfg.flits(bytes) + cfg.hop_latency * hops;
        prop_assert_eq!(s.total_latency_cycles, expect);
        prop_assert_eq!(s.hops, hops);
    }

    /// Dimension-order routes never exceed the half-perimeter bound and
    /// link-busy accounting matches flits × hops.
    #[test]
    fn hop_and_flit_accounting(msgs in proptest::collection::vec(msg_strategy(32), 1..20)) {
        let cfg = TorusConfig::vip();
        let mut net: Torus<u64> = Torus::new(cfg);
        let mut expected_busy = 0u64;
        for m in &msgs {
            loop {
                if net.inject(m.src, m.dst, m.bytes, m.tag).is_ok() {
                    break;
                }
                net.tick();
            }
            let hops = net.hops_between(m.src, m.dst) as u64;
            prop_assert!(hops <= 6, "8x4 torus half-perimeter");
            expected_busy += hops * cfg.flits(m.bytes);
        }
        let mut guard = 0;
        while !net.is_idle() {
            net.tick();
            while net.pop_delivered().is_some() {}
            guard += 1;
            prop_assert!(guard < 1_000_000);
        }
        prop_assert_eq!(net.stats().link_busy_cycles, expected_busy);
    }
}

//! Seeded-random tests for the torus: delivery, conservation, latency
//! bounds, and routing invariants under random traffic. Failures print
//! their seed and re-run alone under `VIP_TEST_SEED`.

use vip_noc::{Torus, TorusConfig};
use vip_rng::{for_each_seed, SplitMix64};

#[derive(Debug, Clone, Copy)]
struct Msg {
    src: usize,
    dst: usize,
    bytes: usize,
    tag: u64,
}

fn random_msg(rng: &mut SplitMix64, nodes: usize) -> Msg {
    Msg {
        src: rng.usize_in(0..nodes),
        dst: rng.usize_in(0..nodes),
        bytes: rng.usize_in(1..64),
        tag: rng.next_u64(),
    }
}

/// Every injected packet is delivered exactly once, at its
/// destination, payload intact.
#[test]
fn all_packets_delivered_once() {
    for_each_seed("all_packets_delivered_once", 0xde11, 24, |seed| {
        let mut rng = SplitMix64::new(seed);
        let msgs: Vec<Msg> = (0..rng.usize_in(1..60))
            .map(|_| random_msg(&mut rng, 32))
            .collect();
        let mut net: Torus<u64> = Torus::new(TorusConfig::vip());
        let mut pending = msgs.clone();
        let mut delivered = Vec::new();
        let mut cycles = 0u64;
        while !pending.is_empty() || !net.is_idle() {
            if let Some(m) = pending.first().copied() {
                if net.inject(m.src, m.dst, m.bytes, m.tag).is_ok() {
                    pending.remove(0);
                }
            }
            net.tick();
            while let Some((node, pkt)) = net.pop_delivered() {
                delivered.push((node, pkt));
            }
            cycles += 1;
            assert!(cycles < 1_000_000, "network wedged");
        }
        assert_eq!(delivered.len(), msgs.len());
        // Multiset match on (dst, tag).
        let mut got: Vec<(usize, u64)> = delivered.iter().map(|(n, p)| (*n, p.payload)).collect();
        let mut want: Vec<(usize, u64)> = msgs.iter().map(|m| (m.dst, m.tag)).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
        for (node, pkt) in &delivered {
            assert_eq!(*node, pkt.dst, "delivered at the destination");
        }
    });
}

/// An uncontended packet's latency is exactly serialization +
/// hop_latency × hops (the analytical model the paper's 3-cycle-hop
/// claim implies).
#[test]
fn uncontended_latency_is_analytic() {
    for_each_seed("uncontended_latency_is_analytic", 0x1a7, 64, |seed| {
        let mut rng = SplitMix64::new(seed);
        let src = rng.usize_in(0..32);
        let dst = rng.usize_in(0..32);
        let bytes = rng.usize_in(1..128);
        let cfg = TorusConfig::vip();
        let mut net: Torus<u64> = Torus::new(cfg);
        net.inject(src, dst, bytes, 1).unwrap();
        let mut cycles = 0;
        while !net.is_idle() {
            net.tick();
            cycles += 1;
            assert!(cycles < 10_000);
        }
        let s = net.stats();
        let hops = net.hops_between(src, dst) as u64;
        let expect = cfg.flits(bytes) + cfg.hop_latency * hops;
        assert_eq!(s.total_latency_cycles, expect, "{src}->{dst} {bytes}B");
        assert_eq!(s.hops, hops);
    });
}

/// Dimension-order routes never exceed the half-perimeter bound and
/// link-busy accounting matches flits × hops.
#[test]
fn hop_and_flit_accounting() {
    for_each_seed("hop_and_flit_accounting", 0xf117, 24, |seed| {
        let mut rng = SplitMix64::new(seed);
        let msgs: Vec<Msg> = (0..rng.usize_in(1..20))
            .map(|_| random_msg(&mut rng, 32))
            .collect();
        let cfg = TorusConfig::vip();
        let mut net: Torus<u64> = Torus::new(cfg);
        let mut expected_busy = 0u64;
        for m in &msgs {
            loop {
                if net.inject(m.src, m.dst, m.bytes, m.tag).is_ok() {
                    break;
                }
                net.tick();
            }
            let hops = net.hops_between(m.src, m.dst) as u64;
            assert!(hops <= 6, "8x4 torus half-perimeter");
            expected_busy += hops * cfg.flits(m.bytes);
        }
        let mut guard = 0;
        while !net.is_idle() {
            net.tick();
            while net.pop_delivered().is_some() {}
            guard += 1;
            assert!(guard < 1_000_000);
        }
        assert_eq!(net.stats().link_busy_cycles, expected_busy);
    });
}

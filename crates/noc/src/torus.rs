//! The flit-level torus network model.

use std::collections::VecDeque;
use std::fmt;

use crate::routing::{hop_count, next_hop};
use crate::stats::NocStats;
use crate::Cycle;
use vip_faults::{crc::crc32, fault_roll, fault_value, FaultDomain, NocFaultConfig};
use vip_snap::{Reader, SnapError, Snapshot, Writer};

/// Torus geometry and link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TorusConfig {
    /// Routers in X. VIP: 8.
    pub width: usize,
    /// Routers in Y. VIP: 4.
    pub height: usize,
    /// Cycles per router+link hop (§V-A: 3).
    pub hop_latency: Cycle,
    /// Bytes per flit (64-bit links: 8).
    pub flit_bytes: usize,
    /// Header flits prepended to every packet.
    pub header_flits: u64,
    /// Link fault injection and the CRC/retransmission protocol bounds
    /// (`None`: no injector wired, links are perfect).
    pub faults: Option<NocFaultConfig>,
}

impl TorusConfig {
    /// The paper's configuration: an 8×4 torus of 64-bit links with
    /// 3-cycle hops.
    #[must_use]
    pub fn vip() -> Self {
        TorusConfig {
            width: 8,
            height: 4,
            hop_latency: 3,
            flit_bytes: 8,
            header_flits: 1,
            faults: None,
        }
    }

    /// Number of router nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Number of directed inter-router links (4 per node).
    #[must_use]
    pub fn links(&self) -> usize {
        self.nodes() * 4
    }

    /// Flits occupied by a packet with `payload_bytes` of payload.
    #[must_use]
    pub fn flits(&self, payload_bytes: usize) -> u64 {
        self.header_flits + payload_bytes.div_ceil(self.flit_bytes) as u64
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.width, node / self.width)
    }
}

/// A packet in flight or delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet<T> {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Payload size in bytes (determines flit count).
    pub payload_bytes: usize,
    /// The carried value.
    pub payload: T,
    /// Cycle at which [`Torus::inject`] accepted the packet.
    pub injected_at: Cycle,
}

/// Error returned when a router's injection port is busy serializing a
/// previous packet; retry next cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectError {
    /// The node whose injection port was busy.
    pub node: usize,
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injection port at node {} is busy", self.node)
    }
}

impl std::error::Error for InjectError {}

#[derive(Debug)]
struct Flight<T> {
    packet: Packet<T>,
    at: (usize, usize),
    ready_at: Cycle,
    flits: u64,
    /// Stable packet identity (the injection-order ordinal): the fault
    /// coordinate, so a packet's fate is independent of what else is in
    /// flight or which stepping engine runs the network.
    uid: u64,
    /// Retransmissions performed so far.
    attempt: u32,
    /// Links traversed in the current attempt (second fault
    /// coordinate).
    hops_done: u64,
    /// CRC-32 over the packet header, carried in the tail flit. The
    /// injector corrupts data flits, never this field, so a mismatch at
    /// the check is a detected corruption.
    crc: u32,
}

/// The outcome of a faulted link traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkFault {
    /// A data flit had bits flipped on the wire (caught by CRC).
    Corrupt,
    /// A flit vanished (caught by timeout).
    Drop,
}

/// A cycle-driven 2D-torus network with virtual cut-through switching.
///
/// Packets serialize onto their source router's injection port, traverse
/// links under X-then-Y dimension-order routing with shortest-way
/// wrap-around (each hop: [`TorusConfig::hop_latency`] cycles of pipeline
/// latency, with the link occupied for the packet's flit count), contend
/// for the destination's ejection port, and appear in the delivered
/// queue. See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Torus<T> {
    cfg: TorusConfig,
    now: Cycle,
    link_busy: Vec<Cycle>,
    inject_busy: Vec<Cycle>,
    eject_busy: Vec<Cycle>,
    flights: Vec<Flight<T>>,
    delivered: VecDeque<(usize, Packet<T>)>,
    failed: VecDeque<Packet<T>>,
    stats: NocStats,
}

impl<T> Torus<T> {
    /// Creates an idle network.
    #[must_use]
    pub fn new(cfg: TorusConfig) -> Self {
        Torus {
            cfg,
            now: 0,
            link_busy: vec![0; cfg.links()],
            inject_busy: vec![0; cfg.nodes()],
            eject_busy: vec![0; cfg.nodes()],
            flights: Vec::new(),
            delivered: VecDeque::new(),
            failed: VecDeque::new(),
            stats: NocStats::default(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TorusConfig {
        &self.cfg
    }

    /// The current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Whether `node`'s injection port is free this cycle (a successful
    /// [`inject`](Self::inject) is guaranteed while this returns `true`).
    #[must_use]
    pub fn can_inject(&self, node: usize) -> bool {
        self.inject_busy[node] <= self.now
    }

    /// Injects a packet at `src` bound for `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`InjectError`] if `src`'s injection port is still
    /// serializing an earlier packet; the caller retries next cycle.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn inject(
        &mut self,
        src: usize,
        dst: usize,
        payload_bytes: usize,
        payload: T,
    ) -> Result<(), InjectError> {
        assert!(src < self.cfg.nodes(), "src {src} out of range");
        assert!(dst < self.cfg.nodes(), "dst {dst} out of range");
        if self.inject_busy[src] > self.now {
            return Err(InjectError { node: src });
        }
        let flits = self.cfg.flits(payload_bytes);
        self.inject_busy[src] = self.now + flits;
        let uid = self.stats.packets;
        self.stats.packets += 1;
        self.stats.flits += flits;
        self.flights.push(Flight {
            packet: Packet {
                src,
                dst,
                payload_bytes,
                payload,
                injected_at: self.now,
            },
            at: self.cfg.coords(src),
            ready_at: self.now + flits,
            flits,
            uid,
            attempt: 0,
            hops_done: 0,
            crc: crc32(&Self::header_bytes(src, dst, payload_bytes, uid)),
        });
        Ok(())
    }

    /// The serialized packet header the tail-flit CRC covers.
    fn header_bytes(src: usize, dst: usize, payload_bytes: usize, uid: u64) -> [u8; 32] {
        let mut h = [0u8; 32];
        h[0..8].copy_from_slice(&(src as u64).to_le_bytes());
        h[8..16].copy_from_slice(&(dst as u64).to_le_bytes());
        h[16..24].copy_from_slice(&(payload_bytes as u64).to_le_bytes());
        h[24..32].copy_from_slice(&uid.to_le_bytes());
        h
    }

    /// Advances the network one cycle.
    pub fn tick(&mut self) {
        self.now += 1;
        self.stats.elapsed_cycles = self.now;
        let dims = (self.cfg.width, self.cfg.height);
        let mut i = 0;
        while i < self.flights.len() {
            if self.flights[i].ready_at > self.now {
                i += 1;
                continue;
            }
            let at = self.flights[i].at;
            let dst = self.cfg.coords(self.flights[i].packet.dst);
            match next_hop(at, dst, dims) {
                None => {
                    // Arrived: contend for the ejection port.
                    let node = self.flights[i].packet.dst;
                    if self.eject_busy[node] <= self.now {
                        self.eject_busy[node] = self.now + self.flights[i].flits;
                        let flight = self.flights.swap_remove(i);
                        self.stats.delivered += 1;
                        self.stats.total_latency_cycles += self.now - flight.packet.injected_at;
                        self.delivered.push_back((node, flight.packet));
                        continue; // do not advance i: swap_remove
                    }
                    i += 1;
                }
                Some((dir, next)) => {
                    let node = at.1 * self.cfg.width + at.0;
                    let link = node * 4 + dir.index();
                    if self.link_busy[link] <= self.now {
                        let flits = self.flights[i].flits;
                        self.link_busy[link] = self.now + flits;
                        self.stats.link_busy_cycles += flits;
                        self.stats.hops += 1;
                        match self.link_fault(&self.flights[i]) {
                            None => {
                                self.flights[i].hops_done += 1;
                                self.flights[i].at = next;
                                self.flights[i].ready_at = self.now + self.cfg.hop_latency;
                            }
                            Some(kind) => {
                                if self.retransmit_or_fail(i, kind) {
                                    continue; // flight failed: swap_remove
                                }
                            }
                        }
                    }
                    i += 1;
                }
            }
        }
    }

    /// Draws the fault outcome for the link traversal the flight just
    /// performed. One roll over `(uid, attempt ‖ hops_done)` is
    /// partitioned into corruption and drop bands, so outcomes are
    /// mutually exclusive, exactly calibrated, and independent of
    /// network load or tick ordering.
    fn link_fault(&self, flight: &Flight<T>) -> Option<LinkFault> {
        let f = self.cfg.faults?;
        let (corrupt, drop) = (u64::from(f.corrupt_ppm), u64::from(f.drop_ppm));
        if corrupt + drop == 0 {
            return None;
        }
        let key = (u64::from(flight.attempt) << 32) | flight.hops_done;
        let roll = fault_roll(f.seed, FaultDomain::NocFlit, flight.uid, key);
        if roll < corrupt {
            Some(LinkFault::Corrupt)
        } else if roll < corrupt + drop {
            Some(LinkFault::Drop)
        } else {
            None
        }
    }

    /// Handles a faulted link traversal for `flights[i]`: verifies the
    /// CRC actually catches a corruption, then either schedules a
    /// retransmission from the source (with exponential backoff) or —
    /// once the retry budget is spent — moves the packet to the failed
    /// queue. Returns `true` if the flight was removed (the caller must
    /// not advance its index).
    fn retransmit_or_fail(&mut self, i: usize, kind: LinkFault) -> bool {
        let f = self.cfg.faults.expect("fault cannot fire without a config");
        let flight = &self.flights[i];
        let key = (u64::from(flight.attempt) << 32) | flight.hops_done;
        match kind {
            LinkFault::Corrupt => {
                // Flip one bit of the header the tail-flit CRC covers;
                // the receiver recomputes and compares. A single-bit
                // error never aliases under CRC-32, so this always
                // detects — but the check is the model, not an axiom.
                let p = &flight.packet;
                let mut received = Self::header_bytes(p.src, p.dst, p.payload_bytes, flight.uid);
                let v = fault_value(f.seed, FaultDomain::NocFlit, flight.uid, key);
                received[(v as usize) % 32] ^= 1 << ((v >> 8) % 8);
                if crc32(&received) == flight.crc {
                    // Undetected corruption (unreachable for single-bit
                    // errors): the packet sails on, silently damaged.
                    self.flights[i].hops_done += 1;
                    return false;
                }
                self.stats.crc_detected += 1;
            }
            LinkFault::Drop => self.stats.dropped += 1,
        }
        if flight.attempt >= f.max_retries {
            self.stats.delivery_failures += 1;
            let flight = self.flights.swap_remove(i);
            self.failed.push_back(flight.packet);
            return true;
        }
        self.stats.retries += 1;
        let backoff = f.backoff << flight.attempt.min(6);
        let flight = &mut self.flights[i];
        flight.attempt += 1;
        flight.hops_done = 0;
        flight.at = self.cfg.coords(flight.packet.src);
        // The backoff window models NAK/timeout detection plus the
        // go-back-to-source turnaround.
        flight.ready_at = self.now + self.cfg.hop_latency + backoff;
        false
    }

    /// First cycle at which `node`'s injection port frees up (equals a
    /// past cycle when it is already free).
    #[must_use]
    pub fn inject_ready_at(&self, node: usize) -> Cycle {
        self.inject_busy[node]
    }

    /// A sound lower bound on the next cycle any in-flight packet can
    /// make progress: its pipeline latency matures, or the link/ejection
    /// port it is blocked on frees up. `None` when nothing is in flight.
    ///
    /// Called after [`tick`](Self::tick); a flight processed this cycle
    /// is either waiting (`ready_at > now`) or was blocked by a busy
    /// resource whose free-time is strictly in the future.
    #[must_use]
    pub fn next_event(&self) -> Option<Cycle> {
        let dims = (self.cfg.width, self.cfg.height);
        let mut next: Option<Cycle> = None;
        for flight in &self.flights {
            let c = if flight.ready_at > self.now {
                flight.ready_at
            } else {
                match next_hop(flight.at, self.cfg.coords(flight.packet.dst), dims) {
                    None => self.eject_busy[flight.packet.dst],
                    Some((dir, _)) => {
                        let node = flight.at.1 * self.cfg.width + flight.at.0;
                        self.link_busy[node * 4 + dir.index()]
                    }
                }
            };
            let c = c.max(self.now + 1);
            next = Some(next.map_or(c, |n| n.min(c)));
        }
        next
    }

    /// Jumps the network clock to `to`. Callers must have established
    /// (via [`next_event`](Self::next_event)) that no flight can move on
    /// any skipped cycle; blocked movement attempts mutate nothing, so
    /// only the clock and its statistics mirror need updating.
    pub fn skip_to(&mut self, to: Cycle) {
        debug_assert!(to >= self.now);
        self.now = to;
        self.stats.elapsed_cycles = to;
    }

    /// Pops the oldest delivered packet, with the node it arrived at.
    pub fn pop_delivered(&mut self) -> Option<(usize, Packet<T>)> {
        self.delivered.pop_front()
    }

    /// Pops the oldest packet that exhausted its retransmission budget.
    /// The system surfaces these as typed delivery-failure errors.
    pub fn pop_failed(&mut self) -> Option<Packet<T>> {
        self.failed.pop_front()
    }

    /// Number of packets currently in flight (injected, neither
    /// delivered nor failed) — the hang watchdog reports this.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.flights.len()
    }

    /// Wires (or removes) link-fault injection at runtime.
    pub fn set_faults(&mut self, faults: Option<NocFaultConfig>) {
        self.cfg.faults = faults;
    }

    /// Whether no packets are in flight (delivered-but-unpopped packets
    /// do not count).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.flights.is_empty()
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> NocStats {
        self.stats
    }

    /// Hop distance between two nodes under this geometry.
    #[must_use]
    pub fn hops_between(&self, a: usize, b: usize) -> usize {
        hop_count(
            self.cfg.coords(a),
            self.cfg.coords(b),
            (self.cfg.width, self.cfg.height),
        )
    }

    /// Serializes the network's mutable state. The payload type is
    /// opaque to the network, so the caller supplies `enc` to encode it;
    /// everything else — the clock, port/link busy times, every in-flight
    /// packet with its retransmission state, the delivered and failed
    /// queues, statistics, and the fault configuration — is written here.
    ///
    /// Flights are written in exact `Vec` order (retirement uses
    /// `swap_remove`, so the order is load-bearing for bit-identical
    /// replay).
    pub fn save_state(&self, w: &mut Writer, enc: &mut dyn FnMut(&T, &mut Writer)) {
        w.u64(self.now);
        self.link_busy.save(w);
        self.inject_busy.save(w);
        self.eject_busy.save(w);
        w.usize(self.flights.len());
        for flight in &self.flights {
            Self::save_packet(&flight.packet, w, enc);
            w.usize(flight.at.0);
            w.usize(flight.at.1);
            w.u64(flight.ready_at);
            w.u64(flight.flits);
            w.u64(flight.uid);
            w.u32(flight.attempt);
            w.u64(flight.hops_done);
            w.u32(flight.crc);
        }
        w.usize(self.delivered.len());
        for (node, packet) in &self.delivered {
            w.usize(*node);
            Self::save_packet(packet, w, enc);
        }
        w.usize(self.failed.len());
        for packet in &self.failed {
            Self::save_packet(packet, w, enc);
        }
        self.stats.save(w);
        self.cfg.faults.save(w);
    }

    /// Restores state saved by [`save_state`](Self::save_state) onto a
    /// network freshly built with the same geometry; `dec` decodes the
    /// opaque payloads `enc` wrote.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on decode failure or a geometry mismatch
    /// (busy-vector lengths disagreeing with this network's config).
    pub fn restore_state(
        &mut self,
        r: &mut Reader<'_>,
        dec: &mut dyn FnMut(&mut Reader<'_>) -> Result<T, SnapError>,
    ) -> Result<(), SnapError> {
        self.now = r.u64()?;
        let link_busy: Vec<Cycle> = Vec::restore(r)?;
        let inject_busy: Vec<Cycle> = Vec::restore(r)?;
        let eject_busy: Vec<Cycle> = Vec::restore(r)?;
        if link_busy.len() != self.cfg.links()
            || inject_busy.len() != self.cfg.nodes()
            || eject_busy.len() != self.cfg.nodes()
        {
            return Err(SnapError::Corrupt("torus geometry mismatch"));
        }
        self.link_busy = link_busy;
        self.inject_busy = inject_busy;
        self.eject_busy = eject_busy;
        let flights = r.usize()?;
        self.flights = Vec::with_capacity(flights.min(1024));
        for _ in 0..flights {
            let packet = Self::restore_packet(r, dec)?;
            self.flights.push(Flight {
                packet,
                at: (r.usize()?, r.usize()?),
                ready_at: r.u64()?,
                flits: r.u64()?,
                uid: r.u64()?,
                attempt: r.u32()?,
                hops_done: r.u64()?,
                crc: r.u32()?,
            });
        }
        let delivered = r.usize()?;
        self.delivered = VecDeque::with_capacity(delivered.min(1024));
        for _ in 0..delivered {
            let node = r.usize()?;
            self.delivered
                .push_back((node, Self::restore_packet(r, dec)?));
        }
        let failed = r.usize()?;
        self.failed = VecDeque::with_capacity(failed.min(1024));
        for _ in 0..failed {
            self.failed.push_back(Self::restore_packet(r, dec)?);
        }
        self.stats = NocStats::restore(r)?;
        self.cfg.faults = Option::restore(r)?;
        Ok(())
    }

    fn save_packet(p: &Packet<T>, w: &mut Writer, enc: &mut dyn FnMut(&T, &mut Writer)) {
        w.usize(p.src);
        w.usize(p.dst);
        w.usize(p.payload_bytes);
        enc(&p.payload, w);
        w.u64(p.injected_at);
    }

    fn restore_packet(
        r: &mut Reader<'_>,
        dec: &mut dyn FnMut(&mut Reader<'_>) -> Result<T, SnapError>,
    ) -> Result<Packet<T>, SnapError> {
        Ok(Packet {
            src: r.usize()?,
            dst: r.usize()?,
            payload_bytes: r.usize()?,
            payload: dec(r)?,
            injected_at: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(net: &mut Torus<u32>, limit: u64) -> Vec<(usize, Packet<u32>)> {
        let mut out = Vec::new();
        for _ in 0..limit {
            net.tick();
            while let Some(d) = net.pop_delivered() {
                out.push(d);
            }
            if net.is_idle() {
                break;
            }
        }
        assert!(net.is_idle(), "network did not drain in {limit} cycles");
        out
    }

    #[test]
    fn single_packet_latency_matches_hops() {
        let cfg = TorusConfig::vip();
        let mut net: Torus<u32> = Torus::new(cfg);
        // 0 -> 3 is 3 hops in +X.
        net.inject(0, 3, 32, 7).unwrap();
        let out = drain(&mut net, 100);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 3);
        let s = net.stats();
        assert_eq!(s.hops, 3);
        // serialization (1 header + 4 payload flits = 5) + 3 hops x 3 cycles.
        assert_eq!(s.total_latency_cycles, 5 + 9);
    }

    #[test]
    fn local_packet_skips_links() {
        let mut net: Torus<u32> = Torus::new(TorusConfig::vip());
        net.inject(5, 5, 8, 1).unwrap();
        let out = drain(&mut net, 50);
        assert_eq!(out[0].0, 5);
        assert_eq!(net.stats().hops, 0);
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let cfg = TorusConfig::vip();
        // Two big packets from 0 and 1 both crossing link 1->2.
        let mut net: Torus<u32> = Torus::new(cfg);
        net.inject(0, 2, 64, 0).unwrap();
        net.inject(1, 2, 64, 1).unwrap();
        drain(&mut net, 200);
        let s = net.stats();
        assert_eq!(s.delivered, 2);
        // With contention, combined latency exceeds two isolated
        // transfers' latencies summed minus overlap: just check the link
        // busy accounting saw both packets on the shared segment.
        assert!(s.link_busy_cycles >= 2 * cfg.flits(64));
    }

    #[test]
    fn injection_port_backpressure() {
        let mut net: Torus<u32> = Torus::new(TorusConfig::vip());
        net.inject(0, 1, 256, 0).unwrap();
        assert!(net.inject(0, 2, 8, 1).is_err());
        // After the serialization window the port frees up.
        for _ in 0..40 {
            net.tick();
        }
        assert!(net.inject(0, 2, 8, 1).is_ok());
    }

    #[test]
    fn all_pairs_deliver() {
        let cfg = TorusConfig::vip();
        let mut net: Torus<u32> = Torus::new(cfg);
        let mut expected = 0;
        for src in 0..cfg.nodes() {
            for dst in 0..cfg.nodes() {
                // Stagger injections so ports are free.
                loop {
                    if net.inject(src, dst, 16, (src * 100 + dst) as u32).is_ok() {
                        break;
                    }
                    net.tick();
                }
                expected += 1;
            }
        }
        let out = drain(&mut net, 100_000);
        assert_eq!(out.len(), expected);
        for (node, pkt) in out {
            assert_eq!(node, pkt.dst);
            assert_eq!(pkt.payload, (pkt.src * 100 + pkt.dst) as u32);
        }
    }

    #[test]
    fn bandwidth_is_bounded_by_link_rate() {
        // Saturate one link: 0 -> 1, many packets. Each 32 B packet is 5
        // flits, so throughput <= 1 packet / 5 cycles.
        let mut net: Torus<u32> = Torus::new(TorusConfig::vip());
        let mut sent = 0;
        let mut received = 0;
        for _ in 0..1000 {
            if net.inject(0, 1, 32, sent).is_ok() {
                sent += 1;
            }
            net.tick();
            while net.pop_delivered().is_some() {
                received += 1;
            }
        }
        assert!(received > 100, "saturated link moved {received} packets");
        assert!(
            received <= 1000 / 5 + 1,
            "received {received} exceeds link capacity"
        );
    }

    fn faulty(corrupt_ppm: u32, drop_ppm: u32, max_retries: u32) -> TorusConfig {
        TorusConfig {
            faults: Some(vip_faults::NocFaultConfig {
                seed: 0x0c5e_ed11,
                corrupt_ppm,
                drop_ppm,
                max_retries,
                backoff: 4,
            }),
            ..TorusConfig::vip()
        }
    }

    #[test]
    fn corrupted_packets_retry_and_still_deliver() {
        // 20% per-traversal corruption with a generous retry budget:
        // every packet must still arrive, with retries on the books.
        let mut net: Torus<u32> = Torus::new(faulty(200_000, 0, 64));
        let mut sent = 0u32;
        for src in 0..net.config().nodes() {
            loop {
                if net.inject(src, (src + 9) % 32, 16, sent).is_ok() {
                    break;
                }
                net.tick();
            }
            sent += 1;
        }
        let out = drain(&mut net, 100_000);
        assert_eq!(out.len(), sent as usize);
        let s = net.stats();
        assert!(s.crc_detected > 0, "no corruption at 20%?");
        assert_eq!(s.retries, s.crc_detected);
        assert_eq!(s.delivery_failures, 0);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn dropped_flits_also_retry() {
        let mut net: Torus<u32> = Torus::new(faulty(0, 200_000, 64));
        for src in 0..8 {
            net.inject(src, src + 16, 16, src as u32).unwrap();
        }
        let out = drain(&mut net, 100_000);
        assert_eq!(out.len(), 8);
        let s = net.stats();
        assert!(s.dropped > 0);
        assert_eq!(s.retries, s.dropped);
        assert_eq!(s.crc_detected, 0);
    }

    #[test]
    fn exhausted_retry_budget_fails_delivery() {
        // Certain corruption on every traversal with a 2-retry budget:
        // any multi-hop packet is abandoned after 3 attempts.
        let mut net: Torus<u32> = Torus::new(faulty(1_000_000, 0, 2));
        net.inject(0, 5, 16, 42).unwrap();
        for _ in 0..500 {
            net.tick();
        }
        assert!(net.is_idle());
        assert!(net.pop_delivered().is_none());
        let failed = net.pop_failed().expect("packet abandoned");
        assert_eq!((failed.src, failed.dst, failed.payload), (0, 5, 42));
        let s = net.stats();
        assert_eq!(s.delivery_failures, 1);
        assert_eq!(s.retries, 2);
        assert_eq!(s.crc_detected, 3, "initial attempt + 2 retries");
    }

    #[test]
    fn local_delivery_never_faults() {
        // src == dst traverses no link, so even certain corruption
        // cannot touch it.
        let mut net: Torus<u32> = Torus::new(faulty(1_000_000, 0, 0));
        net.inject(9, 9, 8, 7).unwrap();
        let out = drain(&mut net, 50);
        assert_eq!(out[0].1.payload, 7);
        assert_eq!(net.stats().delivery_failures, 0);
    }

    #[test]
    fn zero_rate_wired_is_bit_identical_to_unwired() {
        let run = |cfg: TorusConfig| {
            let mut net: Torus<u32> = Torus::new(cfg);
            for src in 0..cfg.nodes() {
                loop {
                    if net.inject(src, (src * 7 + 3) % 32, 24, src as u32).is_ok() {
                        break;
                    }
                    net.tick();
                }
            }
            let out = drain(&mut net, 100_000);
            (out, net.stats())
        };
        assert_eq!(run(TorusConfig::vip()), run(faulty(0, 0, 4)));
    }

    #[test]
    fn retransmissions_are_deterministic() {
        let run = || {
            let mut net: Torus<u32> = Torus::new(faulty(150_000, 50_000, 32));
            for src in 0..16 {
                net.inject(src, 31 - src, 16, src as u32).unwrap();
            }
            let out = drain(&mut net, 100_000);
            (
                out.iter().map(|(n, p)| (*n, p.payload)).collect::<Vec<_>>(),
                net.stats(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshot_roundtrip_mid_flight_replays_bit_identically() {
        // Run a faulted network halfway, snapshot with packets in flight
        // (including mid-retry state), restore onto a fresh network, and
        // check the two finish with identical deliveries and stats.
        let cfg = faulty(150_000, 50_000, 32);
        let mut net: Torus<u32> = Torus::new(cfg);
        for src in 0..16 {
            net.inject(src, 31 - src, 16, src as u32).unwrap();
        }
        for _ in 0..20 {
            net.tick();
        }
        assert!(!net.is_idle(), "want in-flight packets at the snapshot");

        let mut w = Writer::new();
        net.save_state(&mut w, &mut |v, w| w.u32(*v));
        let bytes = w.into_bytes();

        let mut twin: Torus<u32> = Torus::new(cfg);
        let mut r = Reader::new(&bytes);
        twin.restore_state(&mut r, &mut |r| r.u32()).unwrap();
        r.finish().unwrap();

        let finish = |net: &mut Torus<u32>| {
            let out = drain(net, 100_000);
            (
                out.iter().map(|(n, p)| (*n, p.payload)).collect::<Vec<_>>(),
                net.stats(),
            )
        };
        assert_eq!(finish(&mut net), finish(&mut twin));
    }

    #[test]
    fn neighbor_traffic_is_one_hop() {
        let net: Torus<u32> = Torus::new(TorusConfig::vip());
        assert_eq!(net.hops_between(0, 1), 1);
        assert_eq!(net.hops_between(0, 8), 1);
        assert_eq!(net.hops_between(0, 7), 1); // wrap in X
        assert_eq!(net.hops_between(0, 24), 1); // wrap in Y
        assert_eq!(net.hops_between(0, 12), 5); // (4,1): 4 hops in X + 1 in Y
        assert_eq!(net.hops_between(0, 20), 6); // (4,2): the farthest node
    }
}

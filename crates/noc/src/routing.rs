//! Dimension-order routing on a 2D torus.

/// A link direction out of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward increasing X (wrapping).
    XPlus,
    /// Toward decreasing X (wrapping).
    XMinus,
    /// Toward increasing Y (wrapping).
    YPlus,
    /// Toward decreasing Y (wrapping).
    YMinus,
}

impl Direction {
    /// All four directions.
    #[must_use]
    pub fn all() -> [Direction; 4] {
        [
            Direction::XPlus,
            Direction::XMinus,
            Direction::YPlus,
            Direction::YMinus,
        ]
    }

    /// Index 0..4, for dense per-router link arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Direction::XPlus => 0,
            Direction::XMinus => 1,
            Direction::YPlus => 2,
            Direction::YMinus => 3,
        }
    }
}

/// Shortest signed displacement from `from` to `to` on a ring of size
/// `len` (positive = move in the + direction). Ties (exactly half-way)
/// break toward +.
fn ring_delta(from: usize, to: usize, len: usize) -> isize {
    let fwd = (to + len - from) % len;
    if fwd * 2 <= len {
        fwd as isize
    } else {
        fwd as isize - len as isize
    }
}

/// Computes the next hop from router `(x, y)` toward `(dx, dy)` under
/// X-then-Y dimension-order routing, or `None` if already there.
#[must_use]
pub fn next_hop(
    (x, y): (usize, usize),
    (dx, dy): (usize, usize),
    (w, h): (usize, usize),
) -> Option<(Direction, (usize, usize))> {
    let ddx = ring_delta(x, dx, w);
    if ddx > 0 {
        return Some((Direction::XPlus, ((x + 1) % w, y)));
    }
    if ddx < 0 {
        return Some((Direction::XMinus, ((x + w - 1) % w, y)));
    }
    let ddy = ring_delta(y, dy, h);
    if ddy > 0 {
        return Some((Direction::YPlus, (x, (y + 1) % h)));
    }
    if ddy < 0 {
        return Some((Direction::YMinus, (x, (y + h - 1) % h)));
    }
    None
}

/// Number of router-to-router hops between two nodes under dimension-
/// order routing.
#[must_use]
pub fn hop_count(src: (usize, usize), dst: (usize, usize), dims: (usize, usize)) -> usize {
    let mut at = src;
    let mut hops = 0;
    while let Some((_, next)) = next_hop(at, dst, dims) {
        at = next;
        hops += 1;
        debug_assert!(hops <= dims.0 + dims.1, "routing loop");
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIMS: (usize, usize) = (8, 4);

    #[test]
    fn zero_hops_to_self() {
        assert_eq!(hop_count((3, 2), (3, 2), DIMS), 0);
        assert!(next_hop((3, 2), (3, 2), DIMS).is_none());
    }

    #[test]
    fn wraps_the_short_way() {
        // 0 -> 7 on an 8-ring is one hop in -X.
        let (dir, next) = next_hop((0, 0), (7, 0), DIMS).unwrap();
        assert_eq!(dir, Direction::XMinus);
        assert_eq!(next, (7, 0));
        assert_eq!(hop_count((0, 0), (7, 0), DIMS), 1);
    }

    #[test]
    fn x_before_y() {
        let (dir, _) = next_hop((0, 0), (2, 2), DIMS).unwrap();
        assert_eq!(dir, Direction::XPlus);
    }

    #[test]
    fn max_distance_is_half_perimeter() {
        // On an 8x4 torus the farthest node is 4 + 2 = 6 hops away.
        let mut max = 0;
        for sx in 0..8 {
            for sy in 0..4 {
                for dx in 0..8 {
                    for dy in 0..4 {
                        max = max.max(hop_count((sx, sy), (dx, dy), DIMS));
                    }
                }
            }
        }
        assert_eq!(max, 6);
    }

    #[test]
    fn tie_breaks_positive() {
        // Exactly half-way (4 on an 8-ring) goes +X.
        let (dir, _) = next_hop((0, 0), (4, 0), DIMS).unwrap();
        assert_eq!(dir, Direction::XPlus);
    }

    #[test]
    fn routes_terminate_everywhere() {
        for s in 0..32 {
            for d in 0..32 {
                let src = (s % 8, s / 8);
                let dst = (d % 8, d / 8);
                let hops = hop_count(src, dst, DIMS);
                assert!(hops <= 6);
            }
        }
    }
}

//! Network statistics.

use vip_snap::{Reader, SnapError, Snapshot, Writer};

/// Counters accumulated by a [`Torus`](crate::Torus).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NocStats {
    /// Packets injected.
    pub packets: u64,
    /// Packets delivered (popped by receivers may lag this).
    pub delivered: u64,
    /// Flits injected (header + payload).
    pub flits: u64,
    /// Total router-to-router hops traversed.
    pub hops: u64,
    /// Sum over delivered packets of (delivery − injection) cycles.
    pub total_latency_cycles: u64,
    /// Cycles any inter-router link was busy (summed over links).
    pub link_busy_cycles: u64,
    /// Cycles elapsed.
    pub elapsed_cycles: u64,
    /// Flit corruptions the packet CRC caught (each triggers a
    /// retransmission or, past the retry bound, a delivery failure).
    pub crc_detected: u64,
    /// Flits dropped on a link (recovered by the same retransmission
    /// protocol, detected by timeout instead of CRC).
    pub dropped: u64,
    /// Retransmissions performed (total across all packets).
    pub retries: u64,
    /// Packets abandoned after exhausting their retransmission budget.
    /// Surfaced to the system as a typed delivery-failure error.
    pub delivery_failures: u64,
}

impl NocStats {
    /// Mean packet latency in cycles.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.delivered as f64
        }
    }

    /// Mean hops per delivered packet.
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.hops as f64 / self.delivered as f64
        }
    }

    /// Mean link utilization across `links` directed links.
    #[must_use]
    pub fn link_utilization(&self, links: u64) -> f64 {
        if self.elapsed_cycles == 0 || links == 0 {
            0.0
        } else {
            self.link_busy_cycles as f64 / (self.elapsed_cycles * links) as f64
        }
    }
}

/// `packets` doubles as the uid allocator for in-flight packets (the
/// fault-injection coordinate), so restoring these counters exactly is
/// part of the determinism contract, not just bookkeeping.
impl Snapshot for NocStats {
    fn save(&self, w: &mut Writer) {
        for v in [
            self.packets,
            self.delivered,
            self.flits,
            self.hops,
            self.total_latency_cycles,
            self.link_busy_cycles,
            self.elapsed_cycles,
            self.crc_detected,
            self.dropped,
            self.retries,
            self.delivery_failures,
        ] {
            w.u64(v);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(NocStats {
            packets: r.u64()?,
            delivered: r.u64()?,
            flits: r.u64()?,
            hops: r.u64()?,
            total_latency_cycles: r.u64()?,
            link_busy_cycles: r.u64()?,
            elapsed_cycles: r.u64()?,
            crc_detected: r.u64()?,
            dropped: r.u64()?,
            retries: r.u64()?,
            delivery_failures: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = NocStats {
            packets: 4,
            delivered: 4,
            hops: 12,
            total_latency_cycles: 40,
            link_busy_cycles: 100,
            elapsed_cycles: 50,
            ..NocStats::default()
        };
        assert!((s.mean_latency() - 10.0).abs() < 1e-12);
        assert!((s.mean_hops() - 3.0).abs() < 1e-12);
        assert!((s.link_utilization(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero() {
        let s = NocStats::default();
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.mean_hops(), 0.0);
        assert_eq!(s.link_utilization(128), 0.0);
    }
}

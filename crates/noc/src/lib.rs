//! # vip-noc — the 2D-torus vault interconnect
//!
//! VIP's 32 vaults are connected by a 2D torus (8×4) of bidirectional
//! 64-bit links; with the 1.25 GHz clock each link carries 10 GB/s per
//! direction, and each router+link hop costs 3 cycles (§III-C, §V-A).
//! This crate models that network at flit granularity:
//!
//! * **dimension-order routing** (X then Y) with shortest-way wrap-around;
//! * **per-link serialization and contention** — a packet of `n` flits
//!   (8 bytes per flit plus a one-flit header) occupies each link it
//!   crosses for `n` cycles, and contending packets queue;
//! * **injection/ejection port contention** at every router;
//! * aggregate statistics (packets, flits, hop counts, latencies, link
//!   utilization).
//!
//! The payload type is generic: the system simulator instantiates
//! [`Torus`] with its memory-traffic message type, and tests can use
//! plain strings.
//!
//! ```
//! use vip_noc::{Torus, TorusConfig};
//!
//! let mut net: Torus<&str> = Torus::new(TorusConfig::vip());
//! net.inject(0, 31, 32, "hello").unwrap();
//! while !net.is_idle() {
//!     net.tick();
//! }
//! let (node, pkt) = net.pop_delivered().expect("delivered");
//! assert_eq!(node, 31);
//! assert_eq!(pkt.payload, "hello");
//! ```

mod routing;
mod stats;
mod torus;

pub use routing::Direction;
pub use stats::NocStats;
pub use torus::{InjectError, Packet, Torus, TorusConfig};

/// One clock cycle of the shared 1.25 GHz clock.
pub type Cycle = u64;

//! The measured host-CPU BP-M baseline (DESIGN.md substitution #2):
//! throughput of the multithreaded reference implementation, reported
//! next to the simulated VIP numbers in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use vip_baselines::cpu;
use vip_kernels::bp::{self, Mrf, MrfParams};

fn bench_cpu(c: &mut Criterion) {
    let (w, h, l) = (128, 64, 16);
    let costs = bp::stereo_data_costs(w, h, l, 3);
    let mrf = Mrf::new(MrfParams::truncated_linear(w, h, l, 2, 12), costs);
    let mut g = c.benchmark_group("cpu_baseline_bp");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_function(format!("{w}x{h}x{l}_t{threads}"), |b| {
            b.iter(|| std::hint::black_box(cpu::run_parallel(&mrf, 1, threads)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cpu);
criterion_main!(benches);

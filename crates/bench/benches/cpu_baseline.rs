//! The measured host-CPU BP-M baseline (DESIGN.md substitution #2):
//! throughput of the multithreaded reference implementation, reported
//! next to the simulated VIP numbers in EXPERIMENTS.md.

use vip_baselines::cpu;
use vip_bench::harness;
use vip_kernels::bp::{self, Mrf, MrfParams};

fn main() {
    let (w, h, l) = (128, 64, 16);
    let costs = bp::stereo_data_costs(w, h, l, 3);
    let mrf = Mrf::new(MrfParams::truncated_linear(w, h, l, 2, 12), costs);
    for threads in [1usize, 4] {
        harness::time(
            &format!("cpu_baseline_bp/{w}x{h}x{l}_t{threads}"),
            10,
            || cpu::run_parallel(&mrf, 1, threads),
        );
    }
}

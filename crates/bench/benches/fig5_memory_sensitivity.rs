//! Bench behind Figure 5a: one BP-M tile iteration under each of the
//! eight memory configurations.

use vip_bench::{experiments, harness};
use vip_mem::MemConfig;

fn main() {
    for cfg in MemConfig::figure5_sweep() {
        let name = cfg.name;
        harness::time(&format!("fig5_memory_sensitivity/{name}"), 5, || {
            experiments::bp_tile_run(cfg.clone(), 1).cycles
        });
    }
}

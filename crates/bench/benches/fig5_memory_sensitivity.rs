//! Criterion bench behind Figure 5a: one BP-M tile iteration under each
//! of the eight memory configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use vip_bench::experiments;
use vip_mem::MemConfig;

fn bench_configs(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_memory_sensitivity");
    g.sample_size(10);
    for cfg in MemConfig::figure5_sweep() {
        let name = cfg.name;
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(experiments::bp_tile_run(cfg.clone(), 1).cycles));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_configs);
criterion_main!(benches);

//! Bench behind Figure 4: the vertical BP-M strip kernel under the four
//! machine styles (SP+R / SP-R / RF+R / RF-R). The measured quantity
//! for the figure itself is *simulated* milliseconds (printed by
//! `report-fig4`); this bench exercises the full simulation path per
//! style so regressions in any of them show up in `cargo bench`.

use vip_bench::{experiments, harness};
use vip_kernels::bp::VectorMachineStyle;

fn main() {
    for style in VectorMachineStyle::all() {
        harness::time(
            &format!("fig4_arch_sensitivity/{}", style.label()),
            5,
            || experiments::figure4_style(style),
        );
    }
}

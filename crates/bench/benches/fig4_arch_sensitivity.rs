//! Criterion bench behind Figure 4: the vertical BP-M strip kernel under
//! the four machine styles (SP+R / SP-R / RF+R / RF-R). The measured
//! quantity for the figure itself is *simulated* milliseconds (printed
//! by `report-fig4`); this bench exercises the full simulation path per
//! style so regressions in any of them show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use vip_bench::experiments;
use vip_kernels::bp::VectorMachineStyle;

fn bench_styles(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_arch_sensitivity");
    g.sample_size(10);
    for style in VectorMachineStyle::all() {
        g.bench_function(style.label(), |b| {
            b.iter(|| {
                let rows = experiments::figure4_style(style);
                std::hint::black_box(rows)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_styles);
criterion_main!(benches);

//! Simulator-throughput benches: the independent-tile simulations behind
//! Table IV and Figure 3 (BP iteration, convolution, pooling,
//! fully-connected).

use vip_bench::{experiments, harness};
use vip_mem::MemConfig;

fn main() {
    harness::time("tile_simulations/bp_tile_iteration", 5, || {
        experiments::bp_tile_run(MemConfig::baseline(), 1).cycles
    });
    harness::time("tile_simulations/conv_tile_c64", 5, || {
        let layer = experiments::conv_sim_layer(64, 8);
        experiments::conv_tile_run(MemConfig::baseline(), &layer, 2).cycles
    });
    harness::time("tile_simulations/conv_tile_c1_1_regime", 5, || {
        let layer = experiments::conv_sim_layer(4, 8);
        experiments::conv_tile_run(MemConfig::baseline(), &layer, 8).cycles
    });
    harness::time("tile_simulations/pool_tile", 5, || {
        experiments::pool_tile_run(MemConfig::baseline()).cycles
    });
    harness::time("tile_simulations/fc_tile", 5, || {
        experiments::fc_tile_run(MemConfig::baseline()).cycles
    });
}

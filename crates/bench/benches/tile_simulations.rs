//! Simulator-throughput benches: the independent-tile simulations behind
//! Table IV and Figure 3 (BP iteration, convolution, pooling,
//! fully-connected).

use criterion::{criterion_group, criterion_main, Criterion};
use vip_bench::experiments;
use vip_mem::MemConfig;

fn bench_tiles(c: &mut Criterion) {
    let mut g = c.benchmark_group("tile_simulations");
    g.sample_size(10);
    g.bench_function("bp_tile_iteration", |b| {
        b.iter(|| std::hint::black_box(experiments::bp_tile_run(MemConfig::baseline(), 1).cycles));
    });
    g.bench_function("conv_tile_c64", |b| {
        b.iter(|| {
            let layer = experiments::conv_sim_layer(64, 8);
            std::hint::black_box(experiments::conv_tile_run(MemConfig::baseline(), &layer, 2).cycles)
        });
    });
    g.bench_function("conv_tile_c1_1_regime", |b| {
        b.iter(|| {
            let layer = experiments::conv_sim_layer(4, 8);
            std::hint::black_box(experiments::conv_tile_run(MemConfig::baseline(), &layer, 8).cycles)
        });
    });
    g.bench_function("pool_tile", |b| {
        b.iter(|| std::hint::black_box(experiments::pool_tile_run(MemConfig::baseline()).cycles));
    });
    g.bench_function("fc_tile", |b| {
        b.iter(|| std::hint::black_box(experiments::fc_tile_run(MemConfig::baseline()).cycles));
    });
    g.finish();
}

criterion_group!(benches, bench_tiles);
criterion_main!(benches);

//! Minimal shared command-line plumbing for the bench binaries.
//!
//! Every binary under `src/bin/` used to hand-roll the same
//! flag-walking loop, typed-value parsing, and usage-and-exit; this
//! module is that boilerplate written once. No external dependencies
//! (the workspace is dependency-free), no derive magic — a binary
//! declares its usage line, walks its flags, and pulls typed values:
//!
//! ```no_run
//! use vip_bench::cli::Cli;
//!
//! let mut cli = Cli::new("sweep", "[--dir <path>] [--resume]");
//! let mut dir = std::path::PathBuf::from("sweep-out");
//! let mut resume = false;
//! while let Some(arg) = cli.next_arg() {
//!     match arg.as_str() {
//!         "--dir" => dir = cli.value("--dir"),
//!         "--resume" => resume = true,
//!         _ => cli.usage(),
//!     }
//! }
//! ```
//!
//! The exiting conveniences ([`Cli::value`], [`Cli::usage`]) sit on a
//! testable core: [`Cli::from_args`] builds a parser from any argument
//! list and [`Cli::try_value`] reports malformed input as a typed
//! [`CliError`] instead of exiting, which is what the CLI unit tests
//! drive.

use std::collections::VecDeque;
use std::fmt;
use std::process::exit;

/// How an argument failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The flag was the last token; its value never arrived.
    MissingValue(String),
    /// The value was present but would not parse at the target type.
    BadValue {
        /// The flag whose value was malformed.
        flag: String,
        /// The offending token.
        value: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            CliError::BadValue { flag, value } => {
                write!(f, "{flag}: cannot parse `{value}`")
            }
        }
    }
}

/// A command-line in the middle of being parsed.
#[derive(Debug)]
pub struct Cli {
    prog: &'static str,
    options: &'static str,
    args: VecDeque<String>,
}

impl Cli {
    /// Captures the process arguments (program name skipped) for
    /// `prog`, whose usage line is `usage: {prog} {options}`.
    #[must_use]
    pub fn new(prog: &'static str, options: &'static str) -> Self {
        Self::from_args(prog, options, std::env::args().skip(1))
    }

    /// A parser over an explicit argument list — what the unit tests
    /// construct (and what [`Cli::new`] feeds the process arguments
    /// to).
    pub fn from_args(
        prog: &'static str,
        options: &'static str,
        args: impl IntoIterator<Item = String>,
    ) -> Self {
        Cli {
            prog,
            options,
            args: args.into_iter().collect(),
        }
    }

    /// Prints the usage line to stderr and exits with status 2 (the
    /// shared bad-invocation convention of the bench binaries).
    pub fn usage(&self) -> ! {
        eprintln!("usage: {} {}", self.prog, self.options);
        exit(2);
    }

    /// The next raw argument, or `None` when the line is exhausted.
    pub fn next_arg(&mut self) -> Option<String> {
        self.args.pop_front()
    }

    /// Consumes the next argument as `flag`'s value and parses it.
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] when the value is missing or malformed
    /// (the non-exiting core of [`Cli::value`]).
    pub fn try_value<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, CliError> {
        let Some(value) = self.args.pop_front() else {
            return Err(CliError::MissingValue(flag.to_owned()));
        };
        value.parse().map_err(|_| CliError::BadValue {
            flag: flag.to_owned(),
            value,
        })
    }

    /// Consumes the next argument as `flag`'s value and parses it,
    /// exiting with the usage line when it is missing or malformed.
    pub fn value<T: std::str::FromStr>(&mut self, flag: &str) -> T {
        self.try_value(flag).unwrap_or_else(|e| {
            eprintln!("{e}");
            self.usage();
        })
    }
}

/// The bench binaries' shared seed resolution: an explicit `--seed`
/// wins, else the `VIP_TEST_SEED` environment override
/// ([`vip_rng::seed_override`]), else `default`.
#[must_use]
pub fn env_seed(default: u64) -> u64 {
    vip_rng::seed_override().unwrap_or(default)
}

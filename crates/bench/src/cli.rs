//! Minimal shared command-line plumbing for the bench binaries.
//!
//! Every binary under `src/bin/` used to hand-roll the same
//! flag-walking loop, typed-value parsing, and usage-and-exit; this
//! module is that boilerplate written once. No external dependencies
//! (the workspace is dependency-free), no derive magic — a binary
//! declares its usage line, walks its flags, and pulls typed values:
//!
//! ```no_run
//! use vip_bench::cli::Cli;
//!
//! let mut cli = Cli::new("sweep", "[--dir <path>] [--resume]");
//! let mut dir = std::path::PathBuf::from("sweep-out");
//! let mut resume = false;
//! while let Some(arg) = cli.next_arg() {
//!     match arg.as_str() {
//!         "--dir" => dir = cli.value("--dir"),
//!         "--resume" => resume = true,
//!         _ => cli.usage(),
//!     }
//! }
//! ```

use std::collections::VecDeque;
use std::process::exit;

/// A command-line in the middle of being parsed.
#[derive(Debug)]
pub struct Cli {
    prog: &'static str,
    options: &'static str,
    args: VecDeque<String>,
}

impl Cli {
    /// Captures the process arguments (program name skipped) for
    /// `prog`, whose usage line is `usage: {prog} {options}`.
    #[must_use]
    pub fn new(prog: &'static str, options: &'static str) -> Self {
        Cli {
            prog,
            options,
            args: std::env::args().skip(1).collect(),
        }
    }

    /// Prints the usage line to stderr and exits with status 2 (the
    /// shared bad-invocation convention of the bench binaries).
    pub fn usage(&self) -> ! {
        eprintln!("usage: {} {}", self.prog, self.options);
        exit(2);
    }

    /// The next raw argument, or `None` when the line is exhausted.
    pub fn next_arg(&mut self) -> Option<String> {
        self.args.pop_front()
    }

    /// Consumes the next argument as `flag`'s value and parses it,
    /// exiting with the usage line when it is missing or malformed.
    pub fn value<T: std::str::FromStr>(&mut self, flag: &str) -> T {
        let Some(value) = self.args.pop_front() else {
            eprintln!("{flag} needs a value");
            self.usage();
        };
        value.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: cannot parse `{value}`");
            self.usage();
        })
    }
}

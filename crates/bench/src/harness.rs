//! Minimal timing harness for the `cargo bench` targets.
//!
//! The environment builds offline with no external crates, so the bench
//! targets (declared with `harness = false`) time their workloads with
//! `std::time::Instant` directly and print one line per case:
//! `name  mean_ms  (iters)`.

use std::time::Instant;

/// Times `f` over `iters` runs (after one untimed warm-up) and prints
/// the mean wall-clock milliseconds. Returns the mean in seconds.
pub fn time<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> f64 {
    assert!(iters > 0);
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let mean = start.elapsed().as_secs_f64() / f64::from(iters);
    println!("{name:<40} {:>10.3} ms  ({iters} iters)", mean * 1e3);
    mean
}

//! # vip-bench — regenerating the paper's evaluation
//!
//! A shared experiment library used by the `report-*` binaries (one per
//! table/figure of the paper) and the bench targets. Experiments
//! follow the paper's §V-A methodology: cycle-level simulation of the
//! largest *independent tile* of each workload on one vault (4 PEs),
//! extrapolated to the 32-vault machine, with outputs verified against
//! the golden references by the test suite.
//!
//! | Paper artifact | Entry point |
//! |---|---|
//! | Table I | [`report::table1`] |
//! | Table II | [`report::table2`] |
//! | Table III | [`report::table3`] |
//! | Table IV | [`experiments::table4`] |
//! | Figure 3 | [`experiments::roofline`] |
//! | Figure 4 | [`experiments::figure4`] |
//! | Figure 5 | [`experiments::figure5_bp`] / [`experiments::figure5_cnn`] |
//! | §VII / Fig. 6 | [`experiments::rtl_report`] |

pub mod autotune;
pub mod cli;
pub mod experiments;
pub mod harness;
pub mod report;
pub mod runner;
pub mod schedules;

use vip_core::SystemConfig;
use vip_mem::MemConfig;

/// A single-vault (4-PE) system with the given memory preset — the
/// independent-tile simulation vehicle (now a thin delegate to
/// [`SystemConfig::single_vault`], which the serving layer shares).
#[must_use]
pub fn vault_system_config(mem: MemConfig) -> SystemConfig {
    SystemConfig::single_vault(mem)
}

/// Deterministic small-magnitude test values (weights/activations).
#[must_use]
pub fn pattern(n: usize, scale: i16, offset: i16) -> Vec<i16> {
    (0..n)
        .map(|i| ((i * 7 + 3) % 11) as i16 * scale - offset)
        .collect()
}

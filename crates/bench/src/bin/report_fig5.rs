//! Regenerates Figure 5 (memory-parameter sensitivity): the eight
//! memory configurations against BP and VGG-16. Run with --release.
use vip_bench::{experiments, report};

fn main() {
    let bp = experiments::figure5_bp();
    println!(
        "{}",
        report::figure5_table("Figure 5a: BP, one full-HD iteration", &bp)
    );
    let cnn = experiments::figure5_cnn();
    println!(
        "{}",
        report::figure5_table("Figure 5b: VGG-16 end-to-end", &cnn)
    );
}

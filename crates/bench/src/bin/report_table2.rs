//! Regenerates Table II (the VIP instruction set) from the live ISA.
fn main() {
    print!("{}", vip_bench::report::table2());
}

//! A crash-tolerant, resumable tile sweep.
//!
//! Runs a fixed list of independent-tile simulations through the
//! checkpointing [`runner`](vip_bench::runner) and writes a final
//! `report.txt` atomically into the sweep directory. Kill it at any
//! point — including with SIGKILL — and a re-run with `--resume` skips
//! finished points, restores interrupted ones from their latest
//! checkpoint, and produces a report byte-identical to an
//! uninterrupted run.
//!
//! Flags:
//!
//! * `--dir <path>` — sweep working directory (default `sweep-out`)
//! * `--checkpoint-every <cycles>` — simulated cycles between mid-run
//!   snapshots; `0` disables checkpointing (default `1000000`)
//! * `--resume` — reuse records and checkpoints from a previous run
//! * `--budget-secs <s>` — per-point wall-clock budget; a point still
//!   running when it expires is recorded as a partial row (with the
//!   hang watchdog's report on stderr) and the sweep moves on
//! * `--quick` — a smaller point list for smoke tests

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use vip_bench::cli::Cli;
use vip_bench::experiments::{self, PreparedTile};
use vip_bench::runner::{PointStatus, Runner};
use vip_mem::MemConfig;

type Stage = Box<dyn Fn() -> PreparedTile>;

fn points(quick: bool) -> Vec<(&'static str, Stage)> {
    let mut pts: Vec<(&'static str, Stage)> = vec![
        (
            "fc-tile",
            Box::new(|| experiments::fc_tile_sim(MemConfig::baseline())),
        ),
        (
            "conv-tile-c4",
            Box::new(|| {
                experiments::conv_tile_sim(
                    MemConfig::baseline(),
                    &experiments::conv_sim_layer(4, 8),
                    8,
                )
            }),
        ),
        (
            "mem-latency-chase",
            Box::new(|| experiments::mem_latency_tile_sim(MemConfig::baseline(), 512)),
        ),
    ];
    if !quick {
        pts.push((
            "bp-tile-1iter",
            Box::new(|| experiments::bp_tile_sim(MemConfig::baseline(), 1)),
        ));
        pts.push((
            "conv-tile-c64",
            Box::new(|| {
                experiments::conv_tile_sim(
                    MemConfig::baseline(),
                    &experiments::conv_sim_layer(64, 8),
                    2,
                )
            }),
        ));
    }
    pts
}

fn main() {
    let mut cli = Cli::new(
        "sweep",
        "[--dir <path>] [--checkpoint-every <cycles>] [--resume] [--budget-secs <s>] [--quick]",
    );
    let mut dir = PathBuf::from("sweep-out");
    let mut checkpoint_every = 1_000_000u64;
    let mut resume = false;
    let mut budget_secs: Option<u64> = None;
    let mut quick = false;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--dir" => dir = cli.value("--dir"),
            "--checkpoint-every" => checkpoint_every = cli.value("--checkpoint-every"),
            "--resume" => resume = true,
            "--budget-secs" => budget_secs = Some(cli.value("--budget-secs")),
            "--quick" => quick = true,
            _ => cli.usage(),
        }
    }

    let runner = Runner::new(&dir)
        .expect("create sweep directory")
        .checkpoint_every(checkpoint_every)
        .budget(budget_secs.map(Duration::from_secs))
        .resume(resume);

    let mut report = String::new();
    let _ = writeln!(
        report,
        "{:<20} {:>8} {:>14} {:>12}",
        "point", "status", "cycles", "bw (GB/s)"
    );
    let mut degraded = 0usize;
    // Every point stages against the baseline single-vault config, so
    // one fingerprint identifies them all — computed up front so
    // resumed points skip staging entirely.
    let fingerprint = vip_bench::vault_system_config(MemConfig::baseline()).snapshot_fingerprint();
    for (name, stage) in points(quick) {
        let res = runner
            .run_point(name, "", fingerprint, stage)
            .expect("sweep directory writable");
        let status = match res.status {
            PointStatus::Completed => "ok",
            PointStatus::Degraded => "partial",
        };
        if res.status == PointStatus::Degraded {
            degraded += 1;
        }
        let cached = if res.from_cache { "  (cached)" } else { "" };
        println!("{name}: {status}, {} cycles{cached}", res.cycles);
        let _ = writeln!(
            report,
            "{:<20} {:>8} {:>14} {:>12.3}",
            name,
            status,
            res.cycles,
            res.stats.bandwidth_gbs()
        );
    }
    let path = runner
        .write_report("report.txt", &report)
        .expect("report written");
    println!("report: {}", path.display());
    if degraded > 0 {
        println!("{degraded} point(s) degraded; partial rows recorded");
    }
}

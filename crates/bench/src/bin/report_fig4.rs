//! Regenerates Figure 4 (scratchpad/reduction-unit sensitivity): runs
//! the vertical BP-M strip under SP+R / SP-R / RF+R / RF-R. Run with
//! --release.
fn main() {
    let rows = vip_bench::experiments::figure4();
    print!("{}", vip_bench::report::figure4_table(&rows));
}

//! Host-throughput benchmark for the stepping engine: runs the BP, CNN,
//! and MLP tile simulations plus a latency-bound pointer chase once
//! under naive cycle-by-cycle stepping and once under the event-driven
//! fast-forward engine, checks they agree on the quiesce cycle, and
//! prints a JSON report to stdout (host seconds, speedup, and simulated
//! Mcycles/s per workload).
//!
//! Regenerate the checked-in baseline with:
//!
//! ```text
//! cargo run --release --bin sim_throughput > BENCH_sim_throughput.json
//! ```

use std::time::Instant;

use vip_bench::experiments::{
    bp_tile_sim, conv_sim_layer, conv_tile_sim, fc_tile_sim, mem_latency_tile_sim, PreparedTile,
};
use vip_mem::MemConfig;

fn timed(tile: PreparedTile, naive: bool) -> (u64, f64) {
    let start = Instant::now();
    let run = if naive { tile.run_naive() } else { tile.run() };
    (run.cycles, start.elapsed().as_secs_f64())
}

type Case = (&'static str, fn() -> PreparedTile);

fn main() {
    let cases: &[Case] = &[
        ("bp_tile", || bp_tile_sim(MemConfig::baseline(), 1)),
        ("cnn_conv_tile", || {
            conv_tile_sim(MemConfig::baseline(), &conv_sim_layer(64, 8), 2)
        }),
        ("mlp_fc_tile", || fc_tile_sim(MemConfig::baseline())),
        ("mem_latency_chase", || {
            mem_latency_tile_sim(MemConfig::baseline(), 16_384)
        }),
    ];

    let mut entries = Vec::new();
    for (name, make) in cases {
        let (naive_cycles, naive_s) = timed(make(), true);
        let (fast_cycles, fast_s) = timed(make(), false);
        assert_eq!(
            naive_cycles, fast_cycles,
            "{name}: engines disagree on the quiesce cycle"
        );
        let speedup = naive_s / fast_s;
        let fast_mcps = fast_cycles as f64 / fast_s / 1e6;
        eprintln!(
            "{name:<16} {fast_cycles:>10} cycles  naive {:>8.3} s  fast {:>8.3} s  {speedup:>6.2}x  {fast_mcps:>8.2} Mcyc/s",
            naive_s, fast_s
        );
        entries.push(format!(
            "    {{\"name\": \"{name}\", \"sim_cycles\": {fast_cycles}, \"naive_s\": {naive_s:.6}, \
             \"fast_s\": {fast_s:.6}, \"speedup\": {speedup:.2}, \"fast_mcycles_per_s\": {fast_mcps:.2}}}"
        ));
    }

    println!(
        "{{\n  \"bench\": \"sim_throughput\",\n  \"unit_note\": \"host wall-clock seconds; \
         speedup = naive_s / fast_s on identical simulations\",\n  \"results\": [\n{}\n  ]\n}}",
        entries.join(",\n")
    );
}

//! Host-throughput benchmark for the stepping engines: runs the BP,
//! CNN, and MLP tile simulations plus a latency-bound pointer chase
//! under naive cycle-by-cycle stepping, the event-driven fast-forward
//! engine, and the two-tier functional engine, then prints a JSON
//! report to stdout (host seconds, speedups, simulated Mcycles/s, and
//! the functional tier's cycle-estimate error per workload).
//!
//! The two cycle-accurate engines must agree on the quiesce cycle
//! exactly; the functional engine's clock is an extrapolation, so it
//! is reported as a signed error against the accurate count instead.
//!
//! Each engine/workload pair gets one untimed warmup run (page the
//! tile's working set and the simulator's code paths in), then
//! `RUNS` timed runs; the median wall-clock time is reported. The
//! sub-50 ms tiles otherwise jitter several percent run to run.
//!
//! Regenerate the checked-in baseline with:
//!
//! ```text
//! cargo run --release --bin sim_throughput > BENCH_sim_throughput.json
//! ```
//!
//! With `--gate` (used by CI's perf-smoke job) the process exits
//! nonzero unless at least two of the three dense tiles keep a
//! functional-tier speedup of at least [`GATE_MIN_FUNC_SPEEDUP`]x —
//! typical numbers are 10x+, so the gate trips on real regressions,
//! not runner noise.

use std::time::Instant;

use vip_bench::cli::Cli;
use vip_bench::experiments::{
    bp_tile_sim, conv_sim_layer, conv_tile_sim, fc_shape_tile_sim, mem_latency_tile_sim,
    PreparedTile, FC_TILE_LARGE,
};
use vip_core::FuncStats;
use vip_mem::MemConfig;

/// Timed repetitions per engine/workload pair (plus one warmup).
const RUNS: usize = 5;

/// `--gate`: minimum functional-tier speedup (vs the event-driven
/// engine) that at least two dense tiles must reach.
const GATE_MIN_FUNC_SPEEDUP: f64 = 5.0;

/// The compute-bound tiles the `--gate` check applies to;
/// `mem_latency_chase` is latency-bound by construction and measures
/// a different ceiling.
const DENSE_TILES: &[&str] = &["bp_tile", "cnn_conv_tile", "mlp_fc_tile"];

#[derive(Clone, Copy)]
enum EngineSel {
    Naive,
    Fast,
    Functional,
}

fn run_once(tile: PreparedTile, engine: EngineSel) -> (u64, f64, FuncStats) {
    let start = Instant::now();
    let run = match engine {
        EngineSel::Naive => tile.run_naive(),
        EngineSel::Fast => tile.run(),
        EngineSel::Functional => tile.run_functional(),
    };
    (run.cycles, start.elapsed().as_secs_f64(), run.stats.func)
}

/// One warmup run, then the median of [`RUNS`] timed runs. The
/// simulation is deterministic, so every repetition lands on the same
/// cycle count; only the host time varies.
fn timed(make: impl Fn() -> PreparedTile, engine: EngineSel) -> (u64, f64, FuncStats) {
    let (cycles, _, func) = run_once(make(), engine);
    let mut times: Vec<f64> = (0..RUNS)
        .map(|_| {
            let (c, s, _) = run_once(make(), engine);
            assert_eq!(c, cycles, "nondeterministic quiesce cycle across runs");
            s
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (cycles, times[times.len() / 2], func)
}

type Case = (&'static str, fn() -> PreparedTile);

fn main() {
    let cases: &[Case] = &[
        ("bp_tile", || bp_tile_sim(MemConfig::baseline(), 4)),
        ("cnn_conv_tile", || {
            conv_tile_sim(MemConfig::baseline(), &conv_sim_layer(64, 64), 2)
        }),
        // The large FC shape: 4x the matrix of the layer-time tile, so
        // the functional tier's block cache amortizes its decode cost
        // across many more hits (the small tile decodes almost as many
        // blocks as it reuses).
        ("mlp_fc_tile", || {
            fc_shape_tile_sim(MemConfig::baseline(), FC_TILE_LARGE)
        }),
        ("mem_latency_chase", || {
            mem_latency_tile_sim(MemConfig::baseline(), 16_384)
        }),
    ];

    let mut cli = Cli::new("sim_throughput", "[--gate]");
    let mut gate = false;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--gate" => gate = true,
            _ => cli.usage(),
        }
    }
    let mut entries = Vec::new();
    let mut dense_passing = 0usize;
    for (name, make) in cases {
        let (naive_cycles, naive_s, _) = timed(make, EngineSel::Naive);
        let (fast_cycles, fast_s, _) = timed(make, EngineSel::Fast);
        let (func_cycles, func_s, func) = timed(make, EngineSel::Functional);
        assert_eq!(
            naive_cycles, fast_cycles,
            "{name}: cycle-accurate engines disagree on the quiesce cycle"
        );
        let speedup = naive_s / fast_s;
        let func_speedup = fast_s / func_s;
        let cycle_err_pct = (func_cycles as f64 - fast_cycles as f64) / fast_cycles as f64 * 100.0;
        let fast_mcps = fast_cycles as f64 / fast_s / 1e6;
        let func_mcps = func_cycles as f64 / func_s / 1e6;
        if DENSE_TILES.contains(name) && func_speedup >= GATE_MIN_FUNC_SPEEDUP {
            dense_passing += 1;
        }
        eprintln!(
            "{name:<18} {fast_cycles:>10} cycles  naive {naive_s:>7.3} s  fast {fast_s:>7.3} s  \
             func {func_s:>7.3} s  func {func_speedup:>6.2}x  cycle err {cycle_err_pct:>+6.2}%  \
             {func_mcps:>8.2} Mcyc/s"
        );
        entries.push(format!(
            "    {{\"name\": \"{name}\", \"sim_cycles\": {fast_cycles}, \"naive_s\": {naive_s:.6}, \
             \"fast_s\": {fast_s:.6}, \"speedup\": {speedup:.2}, \
             \"fast_mcycles_per_s\": {fast_mcps:.2}, \"func_s\": {func_s:.6}, \
             \"func_speedup\": {func_speedup:.2}, \"func_sim_cycles\": {func_cycles}, \
             \"func_cycle_err_pct\": {cycle_err_pct:.3}, \"func_mcycles_per_s\": {func_mcps:.2}, \
             \"func_blocks_decoded\": {}, \"func_block_cache_hits\": {}, \
             \"func_block_cache_misses\": {}, \"func_instructions\": {}, \
             \"func_accurate_cycles\": {}, \"func_windows\": {}}}",
            func.blocks_decoded,
            func.block_cache_hits,
            func.block_cache_misses,
            func.functional_instructions,
            func.accurate_cycles,
            func.windows,
        ));
    }

    println!(
        "{{\n  \"bench\": \"sim_throughput\",\n  \"unit_note\": \"host wall-clock seconds, \
         median of {RUNS} runs after one warmup; speedup = naive_s / fast_s, func_speedup = \
         fast_s / func_s; func_cycle_err_pct = functional clock estimate vs the exact \
         cycle-accurate count\",\n  \"results\": [\n{}\n  ]\n}}",
        entries.join(",\n")
    );

    if gate && dense_passing < 2 {
        eprintln!(
            "perf gate FAILED: only {dense_passing} of {} dense tiles reached \
             {GATE_MIN_FUNC_SPEEDUP}x functional-tier speedup (need 2)",
            DENSE_TILES.len()
        );
        std::process::exit(1);
    }
}

//! Closed-loop serving benchmark over a simulated VIP fleet.
//!
//! Sweeps offered load (client count) over a pool of simulated
//! devices via [`vip_serve`], printing one summary row per point and
//! writing `BENCH_serving.json` atomically into the output directory.
//! The report is a pure function of the seed and the configuration —
//! byte-identical across re-runs at any `--jobs` — which is exactly
//! what the `--gate` determinism check in CI diffs.
//!
//! Flags:
//!
//! * `--devices <n>` — simulated devices in the fleet (default `4`)
//! * `--queue-depth <n>` — shared admission bound (default `64`)
//! * `--quantum <cycles>` — device slice length (default `100000`)
//! * `--batch <n>` — max requests batched into one tile (default `8`)
//! * `--engine fast|naive|functional` — device stepping engine
//!   (default `fast`)
//! * `--requests <n>` — requests per sweep point (default `64`)
//! * `--clients-max <n>` — sweep client counts 1,2,4,… up to this
//!   (default `16`)
//! * `--think <cycles>` — mean client think time (default `200000`)
//! * `--seed <u64>` — workload seed (default: `VIP_TEST_SEED` env
//!   override, else `7`)
//! * `--jobs <n>` — sweep-point worker threads (default `1`)
//! * `--dir <path>` — output directory (default `serve-out`)
//! * `--schedules <path>` — tuned schedule artifacts (default:
//!   `VIP_SCHEDULE_DIR` or `schedules/`)
//! * `--quick` — small fleet, short sweep, small tiles (CI smoke)
//! * `--gate` — exit nonzero unless the load curve is monotone,
//!   saturating, and fully served

use std::path::PathBuf;
use std::process::exit;

use vip_bench::cli::{env_seed, Cli};
use vip_bench::runner::atomic_write;
use vip_serve::{
    gate, metrics, report_json, run_sweep, Engine, ServeConfig, SweepConfig, Workload,
};

fn main() {
    let mut cli = Cli::new(
        "serve",
        "[--devices <n>] [--queue-depth <n>] [--quantum <cycles>] [--batch <n>] \
         [--engine fast|naive|functional] [--requests <n>] [--clients-max <n>] \
         [--think <cycles>] [--seed <u64>] [--jobs <n>] [--dir <path>] \
         [--schedules <path>] [--quick] [--gate]",
    );
    let mut serve_cfg = ServeConfig::default();
    let mut requests = 64usize;
    let mut clients_max = 16usize;
    let mut think = 200_000u64;
    let mut seed: Option<u64> = None;
    let mut jobs = 1usize;
    let mut dir = PathBuf::from("serve-out");
    let mut quick = false;
    let mut gate_run = false;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--devices" => serve_cfg.devices = cli.value("--devices"),
            "--queue-depth" => serve_cfg.queue_depth = cli.value("--queue-depth"),
            "--quantum" => serve_cfg.quantum = cli.value("--quantum"),
            "--batch" => serve_cfg.batch_max = cli.value("--batch"),
            "--engine" => {
                let label: String = cli.value("--engine");
                serve_cfg.engine = Engine::parse(&label).unwrap_or_else(|| {
                    eprintln!("--engine: unknown engine `{label}`");
                    cli.usage();
                });
            }
            "--requests" => requests = cli.value("--requests"),
            "--clients-max" => clients_max = cli.value("--clients-max"),
            "--think" => think = cli.value("--think"),
            "--seed" => seed = Some(cli.value("--seed")),
            "--jobs" => jobs = cli.value("--jobs"),
            "--dir" => dir = cli.value("--dir"),
            "--schedules" => serve_cfg.schedule_dir = cli.value("--schedules"),
            "--quick" => quick = true,
            "--gate" => gate_run = true,
            _ => cli.usage(),
        }
    }
    if quick {
        serve_cfg.devices = serve_cfg.devices.min(2);
        requests = requests.min(24);
        clients_max = clients_max.min(8);
    }

    let mut clients = Vec::new();
    let mut c = 1usize;
    while c <= clients_max {
        clients.push(c);
        c *= 2;
    }
    let cfg = SweepConfig {
        serve: serve_cfg,
        seed: seed.unwrap_or_else(|| env_seed(7)),
        requests,
        think,
        clients,
        jobs,
        mix: if quick {
            Workload::small_mix()
        } else {
            Workload::standard_mix()
        },
    };

    println!(
        "serving sweep: {} devices, {} requests/point, engine {}, seed {:#x}",
        cfg.serve.devices,
        cfg.requests,
        cfg.serve.engine.label(),
        cfg.seed
    );
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "clients", "tput(rps)", "p50(ms)", "p99(ms)", "max(ms)", "batches", "preempt", "reject"
    );
    let points = run_sweep(&cfg);
    for p in &points {
        let lat = metrics::latency_summary(&p.outcome);
        println!(
            "{:<8} {:>10.2} {:>10.4} {:>10.4} {:>10.4} {:>8} {:>8} {:>8}",
            p.clients,
            metrics::throughput_rps(&p.outcome),
            metrics::ms(lat.map_or(0, |l| l.p50)),
            metrics::ms(lat.map_or(0, |l| l.p99)),
            metrics::ms(lat.map_or(0, |l| l.max)),
            p.outcome.batches,
            p.outcome.preemptions,
            p.outcome.rejections,
        );
    }

    std::fs::create_dir_all(&dir).expect("create output directory");
    let report = report_json(&cfg, &points);
    let path = dir.join("BENCH_serving.json");
    atomic_write(&path, report.as_bytes()).expect("write report");
    println!("report: {}", path.display());

    if gate_run {
        if let Err(why) = gate(&points, cfg.requests) {
            eprintln!("gate: FAILED: {why}");
            exit(1);
        }
        println!("gate: ok");
    }
}

//! Closed-loop serving benchmark over a simulated VIP fleet.
//!
//! Sweeps offered load (client count) over a pool of simulated
//! devices via [`vip_serve`], printing one summary row per point and
//! writing `BENCH_serving.json` atomically into the output directory.
//! The report is a pure function of the seed and the configuration —
//! byte-identical across re-runs at any `--jobs` — which is exactly
//! what the `--gate` determinism check in CI diffs.
//!
//! Flags:
//!
//! * `--devices <n>` — simulated devices in the fleet (default `4`)
//! * `--queue-depth <n>` — shared admission bound (default `64`)
//! * `--quantum <cycles>` — device slice length (default `100000`)
//! * `--batch <n>` — max requests batched into one tile (default `8`)
//! * `--engine fast|naive|functional` — device stepping engine
//!   (default `fast`)
//! * `--requests <n>` — requests per sweep point (default `64`)
//! * `--clients-max <n>` — sweep client counts 1,2,4,… up to this
//!   (default `16`)
//! * `--think <cycles>` — mean client think time (default `200000`)
//! * `--seed <u64>` — workload seed (default: `VIP_TEST_SEED` env
//!   override, else `7`)
//! * `--jobs <n>` — sweep-point worker threads (default `1`)
//! * `--dir <path>` — output directory (default `serve-out`)
//! * `--schedules <path>` — tuned schedule artifacts (default:
//!   `VIP_SCHEDULE_DIR` or `schedules/`)
//! * `--checkpoint-every <events>` — run durably: journal scheduler
//!   events and checkpoint the whole fleet every N events under
//!   `<dir>/wal/`
//! * `--resume` — continue an interrupted durable run from its
//!   journal and checkpoints (the finished report is byte-identical
//!   to an uninterrupted run's)
//! * `--quick` — small fleet, short sweep, small tiles (CI smoke)
//! * `--gate` — exit nonzero unless the load curve is monotone,
//!   saturating, and fully served

use std::path::PathBuf;
use std::process::exit;

use vip_bench::cli::{env_seed, Cli};
use vip_bench::runner::atomic_write;
use vip_serve::{
    gate, metrics, report_json, run_sweep, run_sweep_durable, DurableConfig, Engine, ServeConfig,
    SweepConfig, Workload,
};

/// Default fleet-checkpoint cadence when `--resume` is given without
/// an explicit `--checkpoint-every`.
const DEFAULT_CHECKPOINT_EVERY: u64 = 256;

fn main() {
    let mut cli = Cli::new(
        "serve",
        "[--devices <n>] [--queue-depth <n>] [--quantum <cycles>] [--batch <n>] \
         [--engine fast|naive|functional] [--requests <n>] [--clients-max <n>] \
         [--think <cycles>] [--seed <u64>] [--jobs <n>] [--dir <path>] \
         [--schedules <path>] [--checkpoint-every <events>] [--resume] [--quick] [--gate]",
    );
    let mut serve_cfg = ServeConfig::default();
    let mut requests = 64usize;
    let mut clients_max = 16usize;
    let mut think = 200_000u64;
    let mut seed: Option<u64> = None;
    let mut jobs = 1usize;
    let mut dir = PathBuf::from("serve-out");
    let mut checkpoint_every: Option<u64> = None;
    let mut resume = false;
    let mut quick = false;
    let mut gate_run = false;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--devices" => serve_cfg.devices = cli.value("--devices"),
            "--queue-depth" => serve_cfg.queue_depth = cli.value("--queue-depth"),
            "--quantum" => serve_cfg.quantum = cli.value("--quantum"),
            "--batch" => serve_cfg.batch_max = cli.value("--batch"),
            "--engine" => {
                let label: String = cli.value("--engine");
                serve_cfg.engine = Engine::parse(&label).unwrap_or_else(|| {
                    eprintln!("--engine: unknown engine `{label}`");
                    cli.usage();
                });
            }
            "--requests" => requests = cli.value("--requests"),
            "--clients-max" => clients_max = cli.value("--clients-max"),
            "--think" => think = cli.value("--think"),
            "--seed" => seed = Some(cli.value("--seed")),
            "--jobs" => jobs = cli.value("--jobs"),
            "--dir" => dir = cli.value("--dir"),
            "--schedules" => serve_cfg.schedule_dir = cli.value("--schedules"),
            "--checkpoint-every" => checkpoint_every = Some(cli.value("--checkpoint-every")),
            "--resume" => resume = true,
            "--quick" => quick = true,
            "--gate" => gate_run = true,
            _ => cli.usage(),
        }
    }
    if quick {
        serve_cfg.devices = serve_cfg.devices.min(2);
        requests = requests.min(24);
        clients_max = clients_max.min(8);
    }

    let mut clients = Vec::new();
    let mut c = 1usize;
    while c <= clients_max {
        clients.push(c);
        c *= 2;
    }
    let cfg = SweepConfig {
        serve: serve_cfg,
        seed: seed.unwrap_or_else(|| env_seed(7)),
        requests,
        think,
        clients,
        jobs,
        mix: if quick {
            Workload::small_mix()
        } else {
            Workload::standard_mix()
        },
    };

    println!(
        "serving sweep: {} devices, {} requests/point, engine {}, seed {:#x}",
        cfg.serve.devices,
        cfg.requests,
        cfg.serve.engine.label(),
        cfg.seed
    );
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "clients", "tput(rps)", "p50(ms)", "p99(ms)", "max(ms)", "batches", "preempt", "reject"
    );
    let points = if checkpoint_every.is_some() || resume {
        let durable = DurableConfig {
            dir: dir.join("wal"),
            checkpoint_every: checkpoint_every.unwrap_or(DEFAULT_CHECKPOINT_EVERY),
            resume,
        };
        match run_sweep_durable(&cfg, &durable) {
            Ok(points) => points,
            Err(e) => {
                eprintln!("error: durable sweep failed: {e}");
                exit(1);
            }
        }
    } else {
        run_sweep(&cfg)
    };
    for p in &points {
        let lat = metrics::latency_summary(&p.outcome);
        println!(
            "{:<8} {:>10.2} {:>10.4} {:>10.4} {:>10.4} {:>8} {:>8} {:>8}",
            p.clients,
            metrics::throughput_rps(&p.outcome),
            metrics::ms(lat.map_or(0, |l| l.p50)),
            metrics::ms(lat.map_or(0, |l| l.p99)),
            metrics::ms(lat.map_or(0, |l| l.max)),
            p.outcome.batches,
            p.outcome.preemptions,
            p.outcome.rejections,
        );
    }

    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "error: cannot create output directory {}: {e}",
            dir.display()
        );
        exit(1);
    }
    let report = report_json(&cfg, &points);
    let path = dir.join("BENCH_serving.json");
    if let Err(e) = atomic_write(&path, report.as_bytes()) {
        eprintln!("error: cannot write report {}: {e}", path.display());
        exit(1);
    }
    println!("report: {}", path.display());

    if gate_run {
        if let Err(why) = gate(&points, cfg.requests) {
            eprintln!("gate: FAILED: {why}");
            exit(1);
        }
        println!("gate: ok");
    }
}

//! Regenerates the Section VII area/power numbers from the calibrated
//! analytical model plus simulated switching activity. Run with
//! --release.
fn main() {
    let r = vip_bench::experiments::rtl_report();
    print!("{}", vip_bench::report::rtl_table(&r));
}

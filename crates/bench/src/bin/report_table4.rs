//! Regenerates Table IV: runs the BP / VGG tile simulations, applies the
//! paper's independent-tile extrapolation, and prints ours-vs-paper next
//! to the published baselines. Run with --release.
fn main() {
    let t = vip_bench::experiments::table4();
    print!("{}", vip_bench::report::table4(&t));
}

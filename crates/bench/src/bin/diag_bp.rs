//! Diagnostic: per-sweep cycle and stall breakdown of the BP tile.
use vip_core::{StallReason, System};
use vip_kernels::bp::{
    self, bp_iteration_programs, strip_program, BpLayout, Messages, Mrf, MrfParams, StripParams,
    Sweep, VectorMachineStyle,
};
use vip_kernels::schedule::BpSchedule;
use vip_mem::MemConfig;

/// Runs to quiescence or prints the structured diagnosis (the hang
/// watchdog's per-PE report for a stuck run) and exits nonzero.
fn run_or_exit(sys: &mut System, limit: u64) -> u64 {
    sys.run(limit).unwrap_or_else(|e| {
        eprintln!("diag_bp: simulation failed: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let (w, h, l) = (64, 32, 16);
    let costs = bp::stereo_data_costs(w, h, l, 7);
    let mrf = Mrf::new(MrfParams::truncated_linear(w, h, l, 2, 12), costs);
    let layout = BpLayout::new(0, w, h, l);

    for norm in [false, true] {
        for sweep in [Sweep::Down, Sweep::Right] {
            let mut sys = System::new(vip_bench::vault_system_config(MemConfig::baseline()));
            let msgs = Messages::new(&mrf.params);
            layout.load_into(sys.hmc_mut(), &mrf, &msgs);
            let n = if sweep == Sweep::Down { w } else { h };
            for pe in 0..4 {
                let p = strip_program(&StripParams {
                    layout,
                    sweep,
                    ortho_range: (pe * n / 4, (pe + 1) * n / 4),
                    normalize: norm,
                    style: VectorMachineStyle::SpReduce,
                    group_bufs: 2,
                });
                sys.load_program(pe, &p);
            }
            let cycles = run_or_exit(&mut sys, 80_000_000);
            let st = sys.stats();
            let updates = if sweep == Sweep::Down {
                w * (h - 1)
            } else {
                h * (w - 1)
            };
            println!(
                "norm={norm} {sweep:?}: {cycles} cyc, {:.0} cyc/update/pe, bw {:.1} GB/s",
                cycles as f64 / (updates as f64 / 4.0),
                st.bandwidth_gbs()
            );
            let pe0 = sys.pe(0).stats();
            for r in StallReason::all() {
                if pe0.stalls_for(r) > 0 {
                    println!("   stall {:?}: {}", r, pe0.stalls_for(r));
                }
            }
        }
    }
    // full iteration with barriers
    let mut sys = System::new(vip_bench::vault_system_config(MemConfig::baseline()));
    layout.load_into(
        sys.hmc_mut(),
        &mrf,
        &Messages::new_unnormalized(&mrf.params),
    );
    for (pe, p) in bp_iteration_programs(&layout, &BpSchedule::default(), 1, false)
        .iter()
        .enumerate()
    {
        sys.load_program(pe, p);
    }
    let cycles = run_or_exit(&mut sys, 80_000_000);
    println!(
        "full iteration (no norm): {cycles} cyc  -> {:.0} cyc/update/pe",
        cycles as f64 / (4.0 * 64.0 * 31.0 / 4.0)
    );
}

//! Regenerates Table I (qualitative platform landscape).
fn main() {
    print!("{}", vip_bench::report::table1());
}

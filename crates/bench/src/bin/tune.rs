//! `tune` — parallel schedule autotuner over the kernel codegen knobs.
//!
//! Searches each dense timing tile's schedule space (BP, CNN, MLP) with
//! the successive-halving pipeline in [`vip_bench::autotune`]: seeded
//! sampling, functional-tier pruning rungs, cycle-accurate confirmation
//! of the survivors. Winning schedules land as JSON artifacts under
//! `--out` (loaded automatically by the default experiment stagers via
//! the configuration fingerprint) and the search summary as
//! `BENCH_autotune.json` under `--dir`.
//!
//! The search is deterministic for a fixed `--seed` regardless of
//! `--jobs`, and crash-tolerant: every point is durably recorded under
//! `--dir`, so a killed search rerun with `--resume` skips finished
//! points and emits byte-identical artifacts.

use std::path::PathBuf;
use std::time::Duration;

use vip_bench::autotune::{self, TuneConfig, TuneKernel};
use vip_bench::cli::Cli;
use vip_bench::runner::Runner;
use vip_mem::MemConfig;

fn main() {
    let mut cli = Cli::new(
        "tune",
        "[--jobs N] [--seed S] [--sample N] [--confirm N] [--dir <path>] \
         [--out <path>] [--budget-secs N] [--resume] [--kernel bp|cnn|mlp] [--quick]",
    );
    let mut cfg = TuneConfig::default();
    let mut dir = PathBuf::from("tune-out");
    let mut out = PathBuf::from("schedules");
    let mut budget: Option<Duration> = None;
    let mut resume = false;
    let mut kernels: Vec<TuneKernel> = TuneKernel::ALL.to_vec();
    let mut quick = false;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--jobs" => cfg.jobs = cli.value("--jobs"),
            "--seed" => cfg.seed = cli.value("--seed"),
            "--sample" => cfg.sample = cli.value("--sample"),
            "--confirm" => cfg.confirm = cli.value("--confirm"),
            "--dir" => dir = cli.value("--dir"),
            "--out" => out = cli.value("--out"),
            "--budget-secs" => budget = Some(Duration::from_secs(cli.value("--budget-secs"))),
            "--resume" => resume = true,
            "--kernel" => {
                let name: String = cli.value("--kernel");
                let kernel = TuneKernel::ALL
                    .into_iter()
                    .find(|k| k.label() == name)
                    .unwrap_or_else(|| {
                        eprintln!("--kernel: unknown kernel `{name}`");
                        cli.usage();
                    });
                kernels = vec![kernel];
            }
            "--quick" => quick = true,
            _ => cli.usage(),
        }
    }
    if quick {
        // CI smoke shape: a handful of points, one confirmation beyond
        // the default, still exercising every pipeline stage.
        cfg.sample = 6;
        cfg.confirm = 2;
    }
    cfg.mem = MemConfig::baseline();

    let runner = Runner::new(&dir)
        .expect("create tune dir")
        .budget(budget)
        .resume(resume);

    let mut results = Vec::new();
    for kernel in kernels {
        let res = autotune::tune_kernel(kernel, &cfg, &runner).expect("tune kernel");
        vip_bench::schedules::save(&out, &res.key, res.fingerprint, &res.best)
            .expect("write schedule artifact");
        eprintln!(
            "{}: {} grid, {} searched, default {} cycles, best {} cycles ({:+.2}%) [{}]",
            res.kernel.label(),
            res.grid,
            res.searched,
            res.default_cycles,
            res.best_cycles,
            res.improvement() * 100.0,
            res.best.encoding(),
        );
        results.push(res);
    }

    let report = autotune::report_json(&cfg, &results);
    let path = runner
        .write_report("BENCH_autotune.json", &report)
        .expect("write report");
    println!("{}", path.display());
}

//! Regenerates the Figure 3 roofline data (BP, VGG-16 batch 1, VGG-16
//! batch 16). Run with --release.
use vip_bench::{experiments, report};

fn main() {
    let bp = experiments::roofline_bp();
    println!(
        "{}",
        report::roofline_table("Figure 3a: belief propagation", &bp)
    );
    let v16 = vip_kernels::cnn::vgg16();
    let b1 = experiments::roofline(&v16, 1);
    println!(
        "{}",
        report::roofline_table("Figure 3b: VGG-16, batch 1", &b1)
    );
    let b16 = experiments::roofline(&v16, 16);
    println!(
        "{}",
        report::roofline_table("Figure 3c: VGG-16, batch 16", &b16)
    );
}

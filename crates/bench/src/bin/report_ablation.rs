//! Ablation study over the BP-M tile: quantifies the design choices
//! DESIGN.md calls out (bank-aware placement, the reduction unit, and
//! renormalization overhead). Run with --release.
fn main() {
    println!("Ablations (one BP-M tile iteration, 64x32, 4 PEs):");
    println!(
        "{:<26} {:>12} {:>12} {:>10}",
        "choice", "with (cyc)", "without", "slowdown"
    );
    for a in vip_bench::experiments::ablations() {
        println!(
            "{:<26} {:>12} {:>12} {:>9.2}x",
            a.name,
            a.with_cycles,
            a.without_cycles,
            a.slowdown()
        );
    }
}

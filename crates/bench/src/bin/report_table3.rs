//! Regenerates Table III (memory-simulation parameters) from the live
//! default configuration.
fn main() {
    print!("{}", vip_bench::report::table3());
}

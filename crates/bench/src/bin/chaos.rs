//! Chaos sweep over the serving fleet: availability, recovery
//! latency, and goodput versus injected failure rate.
//!
//! Replays one seeded closed-loop workload at increasing chaos
//! intensity — each point scales the configured per-slice crash and
//! hang rates to a percentage of their full values, with 0 % as the
//! clean baseline — via [`vip_serve::run_chaos_sweep`], printing one
//! summary row per point and writing `BENCH_chaos.json` atomically
//! into the output directory. The report is a pure function of the
//! seeds and the configuration — byte-identical across re-runs at any
//! `--jobs` — which is exactly what the `--gate` determinism check in
//! CI diffs.
//!
//! Flags:
//!
//! * `--devices <n>` — simulated devices in the fleet (default `4`)
//! * `--queue-depth <n>` — shared admission bound (default `64`)
//! * `--quantum <cycles>` — device slice length (default `100000`)
//! * `--batch <n>` — max requests batched into one tile (default `8`)
//! * `--engine fast|naive|functional` — device stepping engine
//!   (default `fast`)
//! * `--requests <n>` — requests per sweep point (default `48`)
//! * `--clients <n>` — concurrent closed-loop clients (default `8`)
//! * `--think <cycles>` — mean client think time (default `100000`)
//! * `--seed <u64>` — workload seed (default: `VIP_TEST_SEED` env
//!   override, else `7`)
//! * `--chaos-seed <u64>` — chaos stream seed (default: workload seed)
//! * `--scales <csv>` — chaos intensities in percent (default
//!   `0,25,50,100,200`)
//! * `--crash-ppm <n>` / `--hang-ppm <n>` / `--flaky-ppm <n>` — the
//!   100 % injection rates
//! * `--checkpoint-every <n>` — periodic-checkpoint cadence in paused
//!   slices (`0` disables; jobs then recover by re-running)
//! * `--max-attempts <n>` — dispatch attempts per job
//! * `--deadline <cycles>` — per-job deadline (`0` disables)
//! * `--shed-floor <pct>` — load-shedding floor (`0` disables)
//! * `--jobs <n>` — sweep-point worker threads (default `1`)
//! * `--dir <path>` — output directory (default `serve-out`)
//! * `--schedules <path>` — tuned schedule artifacts (default:
//!   `VIP_SCHEDULE_DIR` or `schedules/`)
//! * `--fleet-checkpoint-every <events>` — run durably: journal
//!   scheduler events and checkpoint the whole fleet every N events
//!   under `<dir>/wal/` (distinct from `--checkpoint-every`, the
//!   per-job device-snapshot cadence)
//! * `--resume` — continue an interrupted durable run from its
//!   journal and checkpoints (the finished report is byte-identical
//!   to an uninterrupted run's)
//! * `--quick` — small fleet, short points, small tiles, hotter rates
//!   (CI smoke)
//! * `--gate` — exit nonzero unless every request reached a typed
//!   terminal status, the clean point served everything, availability
//!   held the floor, and the hot end actually injected failures
//! * `--floor <pct>` — availability floor the gate enforces
//!   (default `50`)

use std::path::PathBuf;
use std::process::exit;

use vip_bench::cli::{env_seed, Cli};
use vip_bench::runner::atomic_write;
use vip_serve::{
    chaos_gate, chaos_report_json, metrics, run_chaos_sweep, run_chaos_sweep_durable, ChaosConfig,
    ChaosSweepConfig, DurableConfig, Engine, ServeConfig, Workload,
};

/// Default fleet-checkpoint cadence when `--resume` is given without
/// an explicit `--fleet-checkpoint-every`.
const DEFAULT_FLEET_CHECKPOINT_EVERY: u64 = 256;

fn main() {
    let mut cli = Cli::new(
        "chaos",
        "[--devices <n>] [--queue-depth <n>] [--quantum <cycles>] [--batch <n>] \
         [--engine fast|naive|functional] [--requests <n>] [--clients <n>] \
         [--think <cycles>] [--seed <u64>] [--chaos-seed <u64>] [--scales <csv>] \
         [--crash-ppm <n>] [--hang-ppm <n>] [--flaky-ppm <n>] [--checkpoint-every <n>] \
         [--max-attempts <n>] [--deadline <cycles>] [--shed-floor <pct>] [--jobs <n>] \
         [--dir <path>] [--schedules <path>] [--fleet-checkpoint-every <events>] [--resume] \
         [--quick] [--gate] [--floor <pct>]",
    );
    let mut serve_cfg = ServeConfig::default();
    let mut requests = 48usize;
    let mut clients = 8usize;
    let mut think = 100_000u64;
    let mut seed: Option<u64> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut scales_csv = String::from("0,25,50,100,200");
    let mut chaos = ChaosConfig::default_rates(0);
    let mut jobs = 1usize;
    let mut dir = PathBuf::from("serve-out");
    let mut fleet_checkpoint_every: Option<u64> = None;
    let mut resume = false;
    let mut quick = false;
    let mut gate_run = false;
    let mut floor = 50.0f64;
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--devices" => serve_cfg.devices = cli.value("--devices"),
            "--queue-depth" => serve_cfg.queue_depth = cli.value("--queue-depth"),
            "--quantum" => serve_cfg.quantum = cli.value("--quantum"),
            "--batch" => serve_cfg.batch_max = cli.value("--batch"),
            "--engine" => {
                let label: String = cli.value("--engine");
                serve_cfg.engine = Engine::parse(&label).unwrap_or_else(|| {
                    eprintln!("--engine: unknown engine `{label}`");
                    cli.usage();
                });
            }
            "--requests" => requests = cli.value("--requests"),
            "--clients" => clients = cli.value("--clients"),
            "--think" => think = cli.value("--think"),
            "--seed" => seed = Some(cli.value("--seed")),
            "--chaos-seed" => chaos_seed = Some(cli.value("--chaos-seed")),
            "--scales" => scales_csv = cli.value("--scales"),
            "--crash-ppm" => chaos.crash_ppm = cli.value("--crash-ppm"),
            "--hang-ppm" => chaos.hang_ppm = cli.value("--hang-ppm"),
            "--flaky-ppm" => chaos.flaky_ppm = cli.value("--flaky-ppm"),
            "--checkpoint-every" => chaos.checkpoint_every = cli.value("--checkpoint-every"),
            "--max-attempts" => chaos.max_attempts = cli.value("--max-attempts"),
            "--deadline" => chaos.deadline = cli.value("--deadline"),
            "--shed-floor" => chaos.shed_floor_pct = cli.value("--shed-floor"),
            "--jobs" => jobs = cli.value("--jobs"),
            "--dir" => dir = cli.value("--dir"),
            "--schedules" => serve_cfg.schedule_dir = cli.value("--schedules"),
            "--fleet-checkpoint-every" => {
                fleet_checkpoint_every = Some(cli.value("--fleet-checkpoint-every"));
            }
            "--resume" => resume = true,
            "--quick" => quick = true,
            "--gate" => gate_run = true,
            "--floor" => floor = cli.value("--floor"),
            _ => cli.usage(),
        }
    }
    if quick {
        serve_cfg.devices = serve_cfg.devices.min(3);
        // Slices much shorter than a small tile, so jobs span several
        // and mid-flight failures (and checkpoints) can land.
        serve_cfg.quantum = serve_cfg.quantum.min(2_000);
        requests = requests.min(16);
        clients = clients.min(6);
        // Hot enough that the short smoke run actually injects and
        // recovers failures on every class.
        chaos.crash_ppm = chaos.crash_ppm.max(60_000);
        chaos.hang_ppm = chaos.hang_ppm.max(80_000);
        chaos.flaky_ppm = chaos.flaky_ppm.max(500_000);
        if let Some(dram) = chaos.faults.dram.as_mut() {
            dram.single_bit_ppm = dram.single_bit_ppm.max(150);
            dram.double_bit_ppm = dram.double_bit_ppm.max(80);
        }
        chaos.checkpoint_every = 1;
        chaos.retry_backoff = chaos.retry_backoff.min(10_000);
        chaos.quarantine = chaos.quarantine.min(50_000);
    }

    let wl_seed = seed.unwrap_or_else(|| env_seed(7));
    let base = ChaosConfig {
        seed: chaos_seed.unwrap_or(wl_seed),
        ..chaos
    };
    let scales: Vec<u32> = scales_csv
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("--scales: `{s}` is not a percentage");
                cli.usage();
            })
        })
        .collect();
    serve_cfg.chaos = Some(base);
    let cfg = ChaosSweepConfig {
        serve: serve_cfg,
        seed: wl_seed,
        requests,
        clients,
        think,
        scales,
        jobs,
        mix: if quick {
            Workload::small_mix()
        } else {
            Workload::standard_mix()
        },
    };

    println!(
        "chaos sweep: {} devices, {} requests/point, engine {}, seed {:#x}, chaos seed {:#x}",
        cfg.serve.devices,
        cfg.requests,
        cfg.serve.engine.label(),
        cfg.seed,
        base.seed,
    );
    println!(
        "{:<8} {:>7} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scale%",
        "avail%",
        "goodput",
        "rec_p99",
        "crashes",
        "hangs",
        "mchecks",
        "retries",
        "quarant",
        "failed"
    );
    let points = if fleet_checkpoint_every.is_some() || resume {
        let durable = DurableConfig {
            dir: dir.join("wal"),
            checkpoint_every: fleet_checkpoint_every.unwrap_or(DEFAULT_FLEET_CHECKPOINT_EVERY),
            resume,
        };
        match run_chaos_sweep_durable(&cfg, &durable) {
            Ok(points) => points,
            Err(e) => {
                eprintln!("error: durable chaos sweep failed: {e}");
                exit(1);
            }
        }
    } else {
        run_chaos_sweep(&cfg)
    };
    for p in &points {
        let c = &p.outcome.chaos;
        let rec = metrics::recovery_summary(&p.outcome);
        println!(
            "{:<8} {:>7.2} {:>10.2} {:>10.4} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            p.scale,
            metrics::availability_pct(&p.outcome),
            metrics::throughput_rps(&p.outcome),
            metrics::ms(rec.map_or(0, |l| l.p99)),
            c.crashes,
            c.hang_failures,
            c.fault_failures,
            c.job_retries,
            c.quarantines,
            c.failed,
        );
    }

    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "error: cannot create output directory {}: {e}",
            dir.display()
        );
        exit(1);
    }
    let report = chaos_report_json(&cfg, &points);
    let path = dir.join("BENCH_chaos.json");
    if let Err(e) = atomic_write(&path, report.as_bytes()) {
        eprintln!("error: cannot write report {}: {e}", path.display());
        exit(1);
    }
    println!("report: {}", path.display());

    if gate_run {
        if let Err(why) = chaos_gate(&points, floor) {
            eprintln!("gate: FAILED: {why}");
            exit(1);
        }
        println!("gate: ok");
    }
}

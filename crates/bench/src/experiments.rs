//! The experiment runners behind every reproduced table and figure.

use vip_core::{cycles_to_ms, power, SimError, System, SystemStats, CLOCK_HZ};
use vip_kernels::bp::{
    self, bp_iteration_programs, strip_program, BpExtrapolation, BpLayout, Messages, Mrf,
    MrfParams, StripParams, Sweep, VectorMachineStyle,
};
use vip_kernels::cnn::{
    self, conv_tile_programs, pool_tile_programs, ConvLayer, ConvLayout, ConvMode, FcLayer,
    LayerCosts, PoolLayer, PoolLayout, VggLayer,
};
use vip_kernels::mlp::{self, FcBatchLayout, FcLayout};
use vip_kernels::schedule::{BpSchedule, ConvSchedule, FcSchedule, Schedule};
use vip_kernels::sync::i16s_to_bytes;
use vip_mem::MemConfig;

use crate::{pattern, schedules, vault_system_config};

/// Vaults in the full machine.
pub const VAULTS: u64 = 32;
/// Vaults used for the tiny late convolution layers (§VI-A: "we only
/// use half the vaults" for c5).
pub const VAULTS_SMALL_LAYER: u64 = 16;

/// Outcome of one tile simulation.
#[derive(Debug, Clone)]
pub struct TileRun {
    /// Cycles to completion.
    pub cycles: u64,
    /// Full statistics snapshot.
    pub stats: SystemStats,
}

impl TileRun {
    fn run(sys: System, programs: &[vip_isa::Program], limit: u64) -> TileRun {
        PreparedTile::new(sys, programs.to_vec(), limit).run()
    }

    /// Achieved DRAM bandwidth scaled to the 32-vault machine, GB/s.
    #[must_use]
    pub fn machine_bandwidth_gbs(&self) -> f64 {
        self.stats.bandwidth_gbs() * VAULTS as f64
    }
}

/// A tile simulation staged and ready to run: system built, memory
/// loaded, per-PE programs generated. Lets callers pick the stepping
/// engine ([`run`](PreparedTile::run) vs
/// [`run_naive`](PreparedTile::run_naive)) over identical initial state
/// — the vehicle for the determinism regression tests and the
/// `sim_throughput` benchmark.
#[derive(Debug)]
pub struct PreparedTile {
    sys: System,
    programs: Vec<vip_isa::Program>,
    limit: u64,
}

impl PreparedTile {
    fn new(sys: System, programs: Vec<vip_isa::Program>, limit: u64) -> Self {
        PreparedTile {
            sys,
            programs,
            limit,
        }
    }

    /// Overrides the host-thread count for the per-PE step phase (see
    /// [`System::set_step_shards`]); simulated behaviour is identical
    /// for every value.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.sys.set_step_shards(shards);
        self
    }

    /// Overrides the functional tier's duty-cycle knobs (see
    /// [`vip_core::FuncConfig`]); architectural results are identical
    /// for every value, only the timing-estimate quality and host
    /// speed change. Ignored by the cycle-accurate entry points.
    #[must_use]
    pub fn with_func_config(mut self, cfg: vip_core::FuncConfig) -> Self {
        self.sys.set_func_config(cfg);
        self
    }

    /// Simulated-cycle budget before the tile counts as hung.
    #[must_use]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    fn load(&mut self) {
        for (pe, p) in self.programs.iter().enumerate() {
            self.sys.load_program(pe, p);
        }
    }

    /// The staged system (programs not yet loaded) — lets callers key
    /// checkpoints off its configuration fingerprint before committing
    /// to a run.
    #[must_use]
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Loads the programs and hands over the system plus its cycle
    /// budget, for callers that drive stepping themselves (the
    /// checkpointing [`runner`](crate::runner), the snapshot round-trip
    /// tests).
    #[must_use]
    pub fn into_system(mut self) -> (System, u64) {
        self.load();
        (self.sys, self.limit)
    }

    /// Runs with the event-driven fast-forward engine, surfacing the
    /// typed failure (a [`vip_core::HangReport`] for a budget hang) to
    /// the caller.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] if the simulation traps, loses a
    /// packet, or fails to quiesce within its cycle limit.
    pub fn try_run(mut self) -> Result<TileRun, SimError> {
        self.load();
        let cycles = self.sys.run(self.limit)?;
        Ok(TileRun {
            cycles,
            stats: self.sys.stats(),
        })
    }

    /// Runs cycle-by-cycle (the reference engine the fast path must
    /// match bit-for-bit), surfacing the typed failure to the caller.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] if the simulation traps, loses a
    /// packet, or fails to quiesce within its cycle limit.
    pub fn try_run_naive(mut self) -> Result<TileRun, SimError> {
        self.load();
        let cycles = self.sys.run_naive(self.limit)?;
        Ok(TileRun {
            cycles,
            stats: self.sys.stats(),
        })
    }

    /// Runs on the two-tier functional engine
    /// ([`System::run_functional`]): architectural results are
    /// bit-identical to the cycle-level engines', the cycle count is an
    /// estimate extrapolated from sampled accurate windows.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] if the simulation traps, loses a
    /// packet, or fails to quiesce within its cycle limit.
    pub fn try_run_functional(mut self) -> Result<TileRun, SimError> {
        self.load();
        let cycles = self.sys.run_functional(self.limit)?;
        Ok(TileRun {
            cycles,
            stats: self.sys.stats(),
        })
    }

    /// Runs with the event-driven fast-forward engine. On failure,
    /// prints the structured diagnosis (the multi-line hang-watchdog
    /// report for a stuck tile) to stderr and exits nonzero instead of
    /// panicking mid-sweep.
    #[must_use]
    pub fn run(self) -> TileRun {
        self.try_run().unwrap_or_else(|e| exit_with_sim_error(&e))
    }

    /// Runs on the two-tier functional engine. Failure behaviour
    /// matches [`run`](PreparedTile::run): structured report to stderr,
    /// nonzero exit.
    #[must_use]
    pub fn run_functional(self) -> TileRun {
        self.try_run_functional()
            .unwrap_or_else(|e| exit_with_sim_error(&e))
    }

    /// Runs cycle-by-cycle (the reference engine the fast path must
    /// match bit-for-bit). Failure behaviour matches
    /// [`run`](PreparedTile::run): structured report to stderr, nonzero
    /// exit.
    #[must_use]
    pub fn run_naive(self) -> TileRun {
        self.try_run_naive()
            .unwrap_or_else(|e| exit_with_sim_error(&e))
    }
}

/// Prints a typed simulation failure — including the multi-line
/// [`HangReport`](vip_core::HangReport) for hangs — to stderr and exits
/// nonzero: the shared failure path of the infallible bench entry
/// points.
pub fn exit_with_sim_error(err: &SimError) -> ! {
    eprintln!("simulation failed: {err}");
    std::process::exit(1);
}

// ---------------------------------------------------------------------
// Belief propagation
// ---------------------------------------------------------------------

/// Standard BP tile for timing runs: 64×32 pixels, 16 labels.
pub const BP_TILE: (usize, usize, usize) = (64, 32, 16);

fn bp_tile_mrf(w: usize, h: usize, l: usize) -> Mrf {
    let costs = bp::stereo_data_costs(w, h, l, 7);
    Mrf::new(MrfParams::truncated_linear(w, h, l, 2, 12), costs)
}

/// The default BP schedule adjusted to match `layout`'s row padding
/// (the packed ablation layout has `row_pad == 0`).
fn bp_sched_for(layout: &BpLayout) -> BpSchedule {
    BpSchedule {
        row_pad: layout.row_pad,
        ..BpSchedule::default()
    }
}

/// Stages `iters` BP-M iterations over a 64×32 tile on one vault
/// (4 PEs) under `mem` without running them, using the tuned schedule
/// artifact for this shape and configuration when one exists
/// ([`crate::schedules`]), else the hand-picked default.
#[must_use]
pub fn bp_tile_sim(mem: MemConfig, iters: usize) -> PreparedTile {
    let (w, h, l) = BP_TILE;
    let cfg = vault_system_config(mem);
    let sched = match schedules::load(&schedules::bp_key(w, h, l), cfg.snapshot_fingerprint()) {
        Some(Schedule::Bp(s)) if s.validate(w, h, l).is_ok() => s,
        _ => BpSchedule::default(),
    };
    bp_tile_sim_with(cfg, iters, &sched)
}

/// Stages the BP timing tile under an explicit schedule — the
/// autotuner's staging path.
#[must_use]
pub fn bp_tile_sim_scheduled(mem: MemConfig, iters: usize, sched: &BpSchedule) -> PreparedTile {
    bp_tile_sim_with(vault_system_config(mem), iters, sched)
}

fn bp_tile_sim_with(cfg: vip_core::SystemConfig, iters: usize, sched: &BpSchedule) -> PreparedTile {
    let (w, h, l) = BP_TILE;
    let mrf = bp_tile_mrf(w, h, l);
    let layout = BpLayout::with_row_pad(0, w, h, l, sched.row_pad);
    let mut sys = System::new(cfg);
    // Timing runs use the paper's exact Figure 2 instruction sequence
    // (unnormalized: 3L + 2L² ops per update); the normalized variant is
    // exercised by the correctness tests and examples.
    layout.load_into(
        sys.hmc_mut(),
        &mrf,
        &Messages::new_unnormalized(&mrf.params),
    );
    let programs = bp_iteration_programs(&layout, sched, iters, false);
    PreparedTile::new(sys, programs, 80_000_000)
}

/// Simulates `iters` BP-M iterations over a 64×32 tile on one vault
/// (4 PEs) under `mem` — the timing kernel behind Table IV's BP rows,
/// Figure 3a, and Figure 5a.
#[must_use]
pub fn bp_tile_run(mem: MemConfig, iters: usize) -> TileRun {
    bp_tile_sim(mem, iters).run()
}

/// One ablation-study row: a design choice toggled off against the
/// baseline (DESIGN.md's "ablation benches for the design choices"
/// item).
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// What was toggled.
    pub name: &'static str,
    /// Tile cycles with the choice enabled (baseline).
    pub with_cycles: u64,
    /// Tile cycles with the choice disabled.
    pub without_cycles: u64,
}

impl AblationPoint {
    /// Slowdown factor from disabling the choice.
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        self.without_cycles as f64 / self.with_cycles as f64
    }
}

/// Ablations over one BP-M tile iteration: bank-aware placement,
/// software pipelining's reduction unit (from Figure 4), and message
/// renormalization cost.
#[must_use]
pub fn ablations() -> Vec<AblationPoint> {
    let (w, h, l) = BP_TILE;
    let run_layout = |layout: BpLayout, normalize: bool| -> u64 {
        let mrf = bp_tile_mrf(w, h, l);
        let mut sys = System::new(vault_system_config(MemConfig::baseline()));
        layout.load_into(
            sys.hmc_mut(),
            &mrf,
            &Messages::new_unnormalized(&mrf.params),
        );
        let programs = bp_iteration_programs(&layout, &bp_sched_for(&layout), 1, normalize);
        TileRun::run(sys, &programs, 80_000_000).cycles
    };
    let baseline = run_layout(BpLayout::new(0, w, h, l), false);
    vec![
        AblationPoint {
            name: "bank-aware layout",
            with_cycles: baseline,
            without_cycles: run_layout(BpLayout::packed(0, w, h, l), false),
        },
        AblationPoint {
            // The no-reduction iteration program exceeds the 1,024-entry
            // instruction buffer (itself a finding: the divide-and-
            // conquer emulation quadruples the kernel's code size), so
            // this ablation compares the Figure 4 vertical-strip kernel.
            name: "reduction unit (Fig. 4 strip)",
            with_cycles: (figure4_style(VectorMachineStyle::SpReduce) * 1e-3 * CLOCK_HZ) as u64,
            without_cycles: (figure4_style(VectorMachineStyle::SpNoReduce) * 1e-3 * CLOCK_HZ)
                as u64,
        },
        AblationPoint {
            // "Without" the paper's raw Figure 2 sequence means paying
            // for the broadcast renormalization idiom each update.
            name: "raw Fig. 2 update (vs normalized)",
            with_cycles: baseline,
            without_cycles: run_layout(BpLayout::new(0, w, h, l), true),
        },
    ]
}

/// Simulates the hierarchical construct phase (fine θ → coarse θ) on a
/// 64×32 fine tile.
#[must_use]
pub fn construct_tile_run() -> TileRun {
    let (w, h, l) = BP_TILE;
    let mrf = bp_tile_mrf(w, h, l);
    let fine = BpLayout::new(0, w, h, l);
    let coarse = BpLayout::new(1 << 22, w / 2, h / 2, l);
    let mut sys = System::new(vault_system_config(MemConfig::baseline()));
    fine.load_into(
        sys.hmc_mut(),
        &mrf,
        &Messages::new_unnormalized(&mrf.params),
    );
    let programs = bp::construct_programs(&fine, &coarse, 4);
    TileRun::run(sys, &programs, 20_000_000)
}

/// Simulates the hierarchical copy phase (coarse messages → fine
/// messages) on a 64×32 fine tile.
#[must_use]
pub fn copy_tile_run() -> TileRun {
    let (w, h, l) = BP_TILE;
    let mrf = bp_tile_mrf(w, h, l);
    let coarse_mrf = bp::coarse_mrf(&mrf);
    let mut cmsgs = Messages::new(&coarse_mrf.params);
    bp::iteration(&coarse_mrf, &mut cmsgs);
    let fine = BpLayout::new(0, w, h, l);
    let coarse = BpLayout::new(1 << 22, w / 2, h / 2, l);
    let mut sys = System::new(vault_system_config(MemConfig::baseline()));
    fine.load_into(
        sys.hmc_mut(),
        &mrf,
        &Messages::new_unnormalized(&mrf.params),
    );
    coarse.load_into(sys.hmc_mut(), &coarse_mrf, &cmsgs);
    let programs = bp::copy_messages_programs(&coarse, &fine, 4);
    TileRun::run(sys, &programs, 40_000_000)
}

/// Figure 4: runtime of vertical BP-M updates on a 64×32 tile under the
/// four machine styles, in the figure's order. Returns `(style,
/// milliseconds)` — the figure's exact quantity ("execution time for
/// BP-M updates in the vertical direction for a 64×32 tile").
#[must_use]
pub fn figure4() -> Vec<(VectorMachineStyle, f64)> {
    VectorMachineStyle::all()
        .into_iter()
        .map(|style| (style, figure4_style(style)))
        .collect()
}

/// One Figure 4 bar: simulated milliseconds for the vertical update
/// strip under `style`; 4 PEs split the tile's width (§VI-B's
/// experiment).
#[must_use]
pub fn figure4_style(style: VectorMachineStyle) -> f64 {
    let (w, h, l) = BP_TILE;
    let mrf = bp_tile_mrf(w, h, l);
    let layout = BpLayout::new(0, w, h, l);
    let mut sys = System::new(vault_system_config(MemConfig::baseline()));
    layout.load_into(
        sys.hmc_mut(),
        &mrf,
        &Messages::new_unnormalized(&mrf.params),
    );
    let programs: Vec<_> = (0..4)
        .map(|pe| {
            strip_program(&StripParams {
                layout,
                sweep: Sweep::Down,
                ortho_range: (pe * w / 4, (pe + 1) * w / 4),
                normalize: false,
                style,
                group_bufs: 2,
            })
        })
        .collect();
    let run = TileRun::run(sys, &programs, 80_000_000);
    cycles_to_ms(run.cycles)
}

/// One Figure 5 sweep entry.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Configuration label ("open page", …).
    pub config: &'static str,
    /// Achieved machine bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Extrapolated full-workload runtime, ms.
    pub time_ms: f64,
}

/// Figure 5a: one full-HD BP-M iteration under the eight memory
/// configurations.
#[must_use]
pub fn figure5_bp() -> Vec<Fig5Point> {
    MemConfig::figure5_sweep()
        .into_iter()
        .map(|cfg| {
            let name = cfg.name;
            let run = bp_tile_run(cfg, 1);
            let ex = BpExtrapolation {
                tile_pixels: (BP_TILE.0 * BP_TILE.1) as u64,
                tile_cycles: run.cycles,
                vaults: VAULTS,
            };
            Fig5Point {
                config: name,
                bandwidth_gbs: run.machine_bandwidth_gbs(),
                time_ms: ex.frame_ms(1920 * 1080, 1),
            }
        })
        .collect()
}

/// Figure 5b: the VGG-16 network under the eight memory configurations.
/// Per-configuration times scale the baseline network time by the
/// measured conv-tile slowdown (convolutions dominate; §VI-C's CNN bars
/// move far less than BP's, which this preserves).
#[must_use]
pub fn figure5_cnn() -> Vec<Fig5Point> {
    let layer = conv_sim_layer(64, 8);
    let base = conv_tile_run(MemConfig::baseline(), &layer, 2);
    let base_ms = vgg_network_ms(&cnn::vgg16(), 1);
    MemConfig::figure5_sweep()
        .into_iter()
        .map(|cfg| {
            let name = cfg.name;
            let run = conv_tile_run(cfg, &layer, 2);
            Fig5Point {
                config: name,
                bandwidth_gbs: run.machine_bandwidth_gbs(),
                time_ms: base_ms * run.cycles as f64 / base.cycles as f64,
            }
        })
        .collect()
}

/// The BP timing summary feeding Table IV.
#[derive(Debug, Clone)]
pub struct BpSummary {
    /// One full-HD iteration, ms.
    pub fhd_iteration_ms: f64,
    /// Eight-iteration baseline BP-M, ms.
    pub baseline_ms: f64,
    /// One quarter-HD iteration, ms.
    pub qhd_iteration_ms: f64,
    /// Hierarchical construct phase, ms.
    pub construct_ms: f64,
    /// Hierarchical copy phase, ms.
    pub copy_ms: f64,
    /// Hierarchical BP-M: construct + copy + 5 coarse + 5 fine
    /// iterations (the paper's 36.3 ms = 0.36 + 1.26 + 5×1.8 + 5×5.2
    /// composition), ms.
    pub hierarchical_ms: f64,
    /// Tile roofline data.
    pub tile: TileRun,
}

/// Runs the BP tile and derives every BP row of Table IV. The
/// construct/copy phases are pure data movement (3 adds per 5 vectors
/// moved); their times come from the measured achieved bandwidth, which
/// reproduces the paper's 0.36 ms / 1.26 ms.
#[must_use]
pub fn bp_summary() -> BpSummary {
    let run = bp_tile_run(MemConfig::baseline(), 1);
    let ex = BpExtrapolation {
        tile_pixels: (BP_TILE.0 * BP_TILE.1) as u64,
        tile_cycles: run.cycles,
        vaults: VAULTS,
    };
    let fhd = ex.frame_ms(1920 * 1080, 1);
    let qhd = ex.frame_ms(960 * 540, 1);

    // Construct and copy are *measured* on a 64×32 fine tile and scaled
    // by pixel count over the 32 vaults.
    let tile_px = (BP_TILE.0 * BP_TILE.1) as f64;
    let scale = 1920.0 * 1080.0 / tile_px / VAULTS as f64;
    let construct_ms = cycles_to_ms((construct_tile_run().cycles as f64 * scale) as u64);
    let copy_ms = cycles_to_ms((copy_tile_run().cycles as f64 * scale) as u64);

    BpSummary {
        fhd_iteration_ms: fhd,
        baseline_ms: 8.0 * fhd,
        qhd_iteration_ms: qhd,
        construct_ms,
        copy_ms,
        hierarchical_ms: construct_ms + copy_ms + 5.0 * qhd + 5.0 * fhd,
        tile: run,
    }
}

// ---------------------------------------------------------------------
// CNN / MLP
// ---------------------------------------------------------------------

/// The simulated conv tile geometry for a channel shard of `ci`
/// channels and `co` resident output channels.
#[must_use]
pub fn conv_sim_layer(ci: usize, co: usize) -> ConvLayer {
    ConvLayer {
        name: "tile",
        in_channels: ci,
        out_channels: co,
        width: 16,
        height: 8,
        kernel: 3,
        pad: 1,
    }
}

/// Stages one conv tile on one vault without running it, using the
/// tuned schedule artifact for this shape and configuration when one
/// exists ([`crate::schedules`]), else the default schedule around the
/// caller's filter grouping.
#[must_use]
pub fn conv_tile_sim(mem: MemConfig, layer: &ConvLayer, filters_per_group: usize) -> PreparedTile {
    let cfg = vault_system_config(mem);
    let sched = match schedules::load(&schedules::conv_key(layer), cfg.snapshot_fingerprint()) {
        Some(Schedule::Conv(s)) if s.validate(layer).is_ok() => s,
        _ => ConvSchedule::default_for(layer, filters_per_group),
    };
    conv_tile_sim_with(cfg, layer, &sched)
}

/// Stages one conv tile under an explicit schedule — the autotuner's
/// staging path. The layout's filter grouping follows the schedule.
#[must_use]
pub fn conv_tile_sim_scheduled(
    mem: MemConfig,
    layer: &ConvLayer,
    sched: &ConvSchedule,
) -> PreparedTile {
    conv_tile_sim_with(vault_system_config(mem), layer, sched)
}

fn conv_tile_sim_with(
    cfg: vip_core::SystemConfig,
    layer: &ConvLayer,
    sched: &ConvSchedule,
) -> PreparedTile {
    let input = cnn::pad_input(
        layer.width,
        layer.height,
        layer.in_channels,
        layer.pad,
        &pattern(layer.width * layer.height * layer.in_channels, 1, 5),
    );
    let weights = pattern(layer.weights(), 1, 3);
    let bias = pattern(layer.out_channels, 1, 2);
    let layout = ConvLayout {
        layer: *layer,
        input_base: 0,
        weights_base: 0x40_0100,
        bias_base: 0x80_0200,
        output_base: 0xc0_0300,
        filters_per_group: sched.filters_per_group,
        mode: ConvMode::Full,
    };
    let mut sys = System::new(cfg);
    layout.load_into(sys.hmc_mut(), &input, &weights, &bias);
    PreparedTile::new(sys, conv_tile_programs(&layout, sched), 80_000_000)
}

/// Simulates one conv tile on one vault.
#[must_use]
pub fn conv_tile_run(mem: MemConfig, layer: &ConvLayer, filters_per_group: usize) -> TileRun {
    conv_tile_sim(mem, layer, filters_per_group).run()
}

/// Simulates one 2×2 max-pool tile (64-channel shard).
#[must_use]
pub fn pool_tile_run(mem: MemConfig) -> TileRun {
    let layer = PoolLayer {
        name: "tile",
        channels: 64,
        width: 16,
        height: 8,
    };
    let input = cnn::pad_input(16, 8, 64, 1, &pattern(16 * 8 * 64, 1, 5));
    let layout = PoolLayout {
        layer,
        input_base: 0,
        output_base: 0x40_0100,
    };
    let mut sys = System::new(vault_system_config(mem));
    layout.load_into(sys.hmc_mut(), &input);
    TileRun::run(sys, &pool_tile_programs(&layout, 4), 80_000_000)
}

/// The standard fully-connected timing tile: 2048 inputs × 64 outputs
/// (the geometry [`layer_time`]'s extrapolation is calibrated to).
pub const FC_TILE: (usize, usize) = (2048, 64);

/// The enlarged fully-connected tile `sim_throughput` uses so the
/// functional tier's block cache amortizes: same 2048 inputs, 256
/// output rows — 4x the matrix, same program structure, so block
/// decodes are paid once and hit 4x as often.
pub const FC_TILE_LARGE: (usize, usize) = (2048, 256);

fn fc_sim_layer(shape: (usize, usize)) -> FcLayer {
    FcLayer {
        name: "tile",
        inputs: shape.0,
        outputs: shape.1,
    }
}

/// Stages one fully-connected tile of the given `(inputs, outputs)`
/// shape without running it, using the tuned schedule artifact for
/// this shape and configuration when one exists
/// ([`crate::schedules`]), else the hand-picked default.
#[must_use]
pub fn fc_shape_tile_sim(mem: MemConfig, shape: (usize, usize)) -> PreparedTile {
    let layer = fc_sim_layer(shape);
    let cfg = vault_system_config(mem);
    let sched = match schedules::load(&schedules::fc_key(&layer), cfg.snapshot_fingerprint()) {
        Some(Schedule::Fc(s)) if s.validate(&layer).is_ok() => s,
        _ => FcSchedule::default(),
    };
    fc_tile_sim_with(cfg, &layer, &sched)
}

/// Stages one fully-connected tile under an explicit schedule — the
/// autotuner's staging path.
#[must_use]
pub fn fc_tile_sim_scheduled(
    mem: MemConfig,
    shape: (usize, usize),
    sched: &FcSchedule,
) -> PreparedTile {
    fc_tile_sim_with(vault_system_config(mem), &fc_sim_layer(shape), sched)
}

fn fc_tile_sim_with(
    cfg: vip_core::SystemConfig,
    layer: &FcLayer,
    sched: &FcSchedule,
) -> PreparedTile {
    let layout = FcLayout {
        layer: *layer,
        input_base: 0,
        weights_base: 0x10_0100,
        bias_base: 0x80_0200,
        output_base: 0x90_0300,
        relu: true,
    };
    let mut sys = System::new(cfg);
    layout.load_into_scheduled(
        sys.hmc_mut(),
        sched,
        &pattern(layer.inputs, 1, 5),
        &pattern(layer.inputs * layer.outputs, 1, 5),
        &pattern(layer.outputs, 1, 2),
    );
    PreparedTile::new(sys, mlp::fc_tile_programs(&layout, sched), 80_000_000)
}

/// Stages the standard fully-connected timing tile ([`FC_TILE`])
/// without running it.
#[must_use]
pub fn fc_tile_sim(mem: MemConfig) -> PreparedTile {
    fc_shape_tile_sim(mem, FC_TILE)
}

/// Simulates one fully-connected tile (2048 inputs × 64 outputs).
#[must_use]
pub fn fc_tile_run(mem: MemConfig) -> TileRun {
    fc_tile_sim(mem).run()
}

/// Stages a latency-bound pointer chase on one PE of a single-vault
/// system: a chain of 64-bit pointers strides one full bank rotation
/// (`row_bytes × banks_per_vault`) per link, so every `ld.reg` lands in
/// bank 0 on a fresh row (a guaranteed row miss), and each load's
/// result is the next load's address — no memory-level parallelism,
/// tens of idle cycles per link. The other three PEs run a bare `halt`.
/// Where the streaming tiles keep the vault busy nearly every cycle,
/// this is the workload the event-driven fast-forward engine targets.
#[must_use]
pub fn mem_latency_tile_sim(mem: MemConfig, chain: u64) -> PreparedTile {
    use vip_isa::{Asm, Reg};
    assert!(chain > 0, "pointer chase needs at least one link");
    let stride = (mem.row_bytes * mem.banks_per_vault) as u64;
    let base = stride; // clear of address 0 so a null link is loud
    let mut sys = System::new(vault_system_config(mem));
    for i in 0..chain {
        // The last link wraps to the base; the loop counter ends the run.
        let next = base + (i + 1) % chain * stride;
        sys.hmc_mut().host_write_u64(base + i * stride, next);
    }
    // Unroll 8 links per loop iteration so the chase is almost pure
    // memory latency rather than scalar loop overhead.
    let unroll = if chain.is_multiple_of(8) { 8 } else { 1 };
    let r = Reg::new;
    let mut asm = Asm::new();
    asm.mov_imm(r(1), base as i64) // cursor
        .mov_imm(r(2), 0) // iterations done
        .mov_imm(r(3), (chain / unroll) as i64)
        .label("chase");
    for _ in 0..unroll {
        asm.ld_reg(r(4), r(1)).mov(r(1), r(4));
    }
    asm.addi(r(2), r(2), 1).blt(r(2), r(3), "chase").halt();
    let chase = asm.assemble().expect("pointer-chase program assembles");
    let mut idle = Asm::new();
    idle.halt();
    let idle = idle.assemble().expect("halt program assembles");
    let mut programs = vec![idle; sys.config().total_pes()];
    programs[0] = chase;
    PreparedTile::new(sys, programs, 80_000_000)
}

/// Simulates a batched fully-connected tile (2048×64, batch 16, kc 64):
/// each weight chunk streams once and serves all 16 inputs.
#[must_use]
pub fn fc_batch_tile_run(mem: MemConfig, batch: usize) -> TileRun {
    let layer = FcLayer {
        name: "tile",
        inputs: 2048,
        outputs: 64,
    };
    let layout = FcBatchLayout {
        layer,
        batch,
        kc: 64,
        input_base: 0,
        weights_base: 0x10_0100,
        bias_base: 0x80_0200,
        output_base: 0x90_0300,
        relu: true,
    };
    let mut sys = System::new(vault_system_config(mem));
    layout.load_into(
        sys.hmc_mut(),
        &pattern(layer.inputs * batch, 1, 5),
        &pattern(layer.inputs * layer.outputs, 1, 5),
        &pattern(layer.outputs, 1, 2),
    );
    TileRun::run(sys, &mlp::fc_batch_tile_programs(&layout, 4), 160_000_000)
}

/// One layer's extrapolated numbers.
#[derive(Debug, Clone)]
pub struct LayerTime {
    /// Layer name (`c1_1`, `p3`, `fc6`, …).
    pub name: &'static str,
    /// Extrapolated full-machine time, ms.
    pub ms: f64,
    /// Model arithmetic intensity, ops/byte.
    pub ai: f64,
    /// Achieved performance, GOp/s (ops / extrapolated time).
    pub gops: f64,
}

/// Memoized tile runs shared across layers with the same shard
/// geometry.
#[derive(Debug, Default)]
pub struct TileCache {
    conv_c3: Option<TileRun>,
    conv_c64: Option<TileRun>,
    pool: Option<TileRun>,
    fc: Option<TileRun>,
    fc_b16: Option<TileRun>,
}

impl TileCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn conv(&mut self, ci: usize) -> &TileRun {
        if ci <= 8 {
            self.conv_c3.get_or_insert_with(|| {
                // c1_1 regime: all filters resident (F = out_channels).
                let layer = conv_sim_layer(4, 8);
                conv_tile_run(MemConfig::baseline(), &layer, 8)
            })
        } else {
            self.conv_c64.get_or_insert_with(|| {
                conv_tile_run(MemConfig::baseline(), &conv_sim_layer(64, 8), 2)
            })
        }
    }

    fn pool(&mut self) -> &TileRun {
        self.pool
            .get_or_insert_with(|| pool_tile_run(MemConfig::baseline()))
    }

    fn fc(&mut self) -> &TileRun {
        self.fc
            .get_or_insert_with(|| fc_tile_run(MemConfig::baseline()))
    }

    fn fc_b16(&mut self) -> &TileRun {
        self.fc_b16
            .get_or_insert_with(|| fc_batch_tile_run(MemConfig::baseline(), 16))
    }
}

/// Extrapolates one layer's full-machine time from its tile simulation
/// (MAC/element-proportional scaling over the vaults that serve the
/// layer), at `batch` images.
#[must_use]
pub fn layer_time(layer: &VggLayer, batch: u64, cache: &mut TileCache) -> LayerTime {
    let costs = LayerCosts::of(layer, batch);
    let ms = match layer {
        VggLayer::Conv(c) => {
            let run = cache.conv(c.in_channels).clone();
            let tile = conv_sim_layer(c.in_channels.min(64), 8);
            let tile_macs = if c.in_channels <= 8 {
                conv_sim_layer(4, 8).macs()
            } else {
                tile.macs()
            };
            let vaults = if c.width <= 14 {
                VAULTS_SMALL_LAYER
            } else {
                VAULTS
            };
            let mut cycles =
                run.cycles as f64 * (c.macs() as f64 / tile_macs as f64) / vaults as f64;
            // Channel shards add an accumulation pass: one read per
            // shard plus one write of the output plane at the achieved
            // bandwidth.
            let shards = c.in_channels.div_ceil(64);
            if shards > 1 {
                let plane = (c.width * c.height * c.out_channels * 2) as f64;
                let bw_bytes_per_cycle =
                    run.machine_bandwidth_gbs() * 1e9 / CLOCK_HZ / VAULTS as f64 * vaults as f64;
                cycles += (shards as f64 + 1.0) * plane / bw_bytes_per_cycle;
            }
            cycles_to_ms((cycles * batch as f64) as u64)
        }
        VggLayer::Pool(p) => {
            let run = cache.pool().clone();
            let tile_elems = (16 * 8 * 64) as f64;
            let elems = (p.width * p.height * p.channels) as f64;
            cycles_to_ms(
                (run.cycles as f64 * elems / tile_elems / VAULTS as f64 * batch as f64) as u64,
            )
        }
        VggLayer::Fc(f) => {
            if batch >= 16 {
                // Measured batched tile: one weight stream serves all 16
                // inputs; scale by the batched MAC ratio.
                let run = cache.fc_b16().clone();
                let tile_macs = (2048 * 64 * 16) as f64;
                let cycles =
                    run.cycles as f64 * ((f.macs() * batch) as f64 / tile_macs) / VAULTS as f64;
                cycles_to_ms(cycles as u64)
            } else {
                // Weight streaming dominates at small batch; compute
                // scales with batch. Take the max of the two regimes.
                let run = cache.fc().clone();
                let tile_macs = (2048 * 64) as f64;
                let weight_bound =
                    run.cycles as f64 * (f.macs() as f64 / tile_macs) / VAULTS as f64;
                let compute_bound = (2 * f.macs() * batch) as f64 / (1280e9 * 0.65) * CLOCK_HZ;
                cycles_to_ms(weight_bound.max(compute_bound) as u64)
            }
        }
    };
    LayerTime {
        name: layer.name(),
        ms,
        ai: costs.arithmetic_intensity(),
        gops: costs.ops as f64 / (ms * 1e-3) / 1e9,
    }
}

/// Extrapolated full-network time, ms.
#[must_use]
pub fn vgg_network_ms(net: &[VggLayer], batch: u64) -> f64 {
    let mut cache = TileCache::new();
    net.iter()
        .map(|l| layer_time(l, batch, &mut cache).ms)
        .sum()
}

/// Per-layer breakdown of a network at a batch size.
#[must_use]
pub fn vgg_layer_times(net: &[VggLayer], batch: u64) -> Vec<LayerTime> {
    let mut cache = TileCache::new();
    net.iter()
        .map(|l| layer_time(l, batch, &mut cache))
        .collect()
}

// ---------------------------------------------------------------------
// Roofline (Figure 3)
// ---------------------------------------------------------------------

/// One roofline point.
#[derive(Debug, Clone)]
pub struct RooflineEntry {
    /// Kernel label as the figure names it.
    pub name: String,
    /// Arithmetic intensity, ops/byte.
    pub ai: f64,
    /// Achieved GOp/s.
    pub gops: f64,
}

/// Figure 3a: BP kernels under the roofline.
#[must_use]
pub fn roofline_bp() -> Vec<RooflineEntry> {
    let run = bp_tile_run(MemConfig::baseline(), 1);
    let point = run.stats.roofline();
    let machine_gops = point.gops() * VAULTS as f64;
    let cons = construct_tile_run();
    let cons_point = cons.stats.roofline();
    vec![
        RooflineEntry {
            name: "fhd".into(),
            ai: point.arithmetic_intensity(),
            gops: machine_gops,
        },
        RooflineEntry {
            name: "qhd".into(),
            ai: point.arithmetic_intensity(),
            gops: machine_gops * 0.92, // smaller frame: barrier overhead bites harder
        },
        RooflineEntry {
            name: "cons".into(),
            ai: cons_point.arithmetic_intensity(),
            gops: cons_point.gops() * VAULTS as f64,
        },
    ]
}

/// Figure 3b/3c: VGG-16 layers under the roofline at `batch`.
#[must_use]
pub fn roofline(net: &[VggLayer], batch: u64) -> Vec<RooflineEntry> {
    vgg_layer_times(net, batch)
        .into_iter()
        .map(|lt| RooflineEntry {
            name: lt.name.to_owned(),
            ai: lt.ai,
            gops: lt.gops,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table IV and the RTL report
// ---------------------------------------------------------------------

/// Everything Table IV reports for VIP, measured/extrapolated here.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// BP rows.
    pub bp: BpSummary,
    /// VGG-16 convolution layers only, batch 3, ms.
    pub vgg16_conv_b3_ms: f64,
    /// VGG-16 full network, batch 1, ms.
    pub vgg16_full_b1_ms: f64,
    /// VGG-16 full network, batch 16, ms.
    pub vgg16_full_b16_ms: f64,
    /// VGG-19 full network, batch 1, ms.
    pub vgg19_full_b1_ms: f64,
    /// Fully-connected layers, batch 1, ms.
    pub fc_b1_ms: f64,
    /// Modeled BP power for 128 PEs, W.
    pub bp_power_w: f64,
    /// Modeled CNN power for 128 PEs, W.
    pub cnn_power_w: f64,
}

/// Runs every simulation feeding Table IV.
#[must_use]
pub fn table4() -> Table4 {
    let bp = bp_summary();
    let v16 = cnn::vgg16();
    let v19 = cnn::vgg19();
    let conv_only: Vec<VggLayer> = v16
        .iter()
        .filter(|l| !matches!(l, VggLayer::Fc(_)))
        .copied()
        .collect();
    let fc_only: Vec<VggLayer> = v16
        .iter()
        .filter(|l| matches!(l, VggLayer::Fc(_)))
        .copied()
        .collect();

    let energy = power::EnergyModel::tsmc28();
    let per_pe_scale = |run: &TileRun| {
        // The tile ran on 4 PEs; model one PE's average counters.
        let mut merged = run.stats.pe;
        merged.lane_ops /= 4;
        merged.lane_mul_ops /= 4;
        merged.sp_beats /= 4;
        merged.instructions /= 4;
        (merged, run.cycles)
    };
    let (bp_pe, bp_cycles) = per_pe_scale(&bp.tile);
    let conv_run = conv_tile_run(MemConfig::baseline(), &conv_sim_layer(64, 8), 2);
    let (cnn_pe, cnn_cycles) = per_pe_scale(&conv_run);

    Table4 {
        vgg16_conv_b3_ms: vgg_network_ms(&conv_only, 3),
        vgg16_full_b1_ms: vgg_network_ms(&v16, 1),
        vgg16_full_b16_ms: vgg_network_ms(&v16, 16),
        vgg19_full_b1_ms: vgg_network_ms(&v19, 1),
        fc_b1_ms: vgg_network_ms(&fc_only, 1),
        bp_power_w: energy.pe_power_w(&bp_pe, bp_cycles) * 128.0,
        cnn_power_w: energy.pe_power_w(&cnn_pe, cnn_cycles) * 128.0,
        bp,
    }
}

/// The §VII area/power numbers from the calibrated model plus measured
/// activity.
#[derive(Debug, Clone)]
pub struct RtlReport {
    /// Per-PE area, mm².
    pub pe_area_mm2: f64,
    /// 128-PE area, mm².
    pub chip_area_mm2: f64,
    /// Per-PE BP power, mW.
    pub bp_pe_mw: f64,
    /// Per-PE CNN power, mW.
    pub cnn_pe_mw: f64,
}

/// Computes the RTL-synthesis substitute report.
#[must_use]
pub fn rtl_report() -> RtlReport {
    let area = power::AreaModel::vip_pe();
    let energy = power::EnergyModel::tsmc28();
    let bp_run = bp_tile_run(MemConfig::baseline(), 1);
    let cnn_run = conv_tile_run(MemConfig::baseline(), &conv_sim_layer(64, 8), 2);
    let pe_mw = |run: &TileRun| {
        let mut pe = run.stats.pe;
        pe.lane_ops /= 4;
        pe.lane_mul_ops /= 4;
        pe.sp_beats /= 4;
        pe.instructions /= 4;
        energy.pe_power_w(&pe, run.cycles) * 1e3
    };
    RtlReport {
        pe_area_mm2: area.pe_mm2(),
        chip_area_mm2: area.chip_mm2(128),
        bp_pe_mw: pe_mw(&bp_run),
        cnn_pe_mw: pe_mw(&cnn_run),
    }
}

/// Host-staged sanity data used by `report-table2`'s ISA demo.
#[must_use]
pub fn figure2_listing() -> String {
    let src = "ld.sram.i16 r11, r7, r61   ; load messages
ld.sram.i16 r12, r8, r61   ; r61 = vector length
ld.sram.i16 r13, r9, r61   ; r7-9 = DRAM addresses
v.v.add.i16 r11, r11, r12  ; update message
v.v.add.i16 r11, r11, r13
v.v.add.i16 r11, r11, r14
m.v.add.min.i16 r10, r15, r11 ; r15 = smoothness cost in SRAM
st.sram.i16 r10, r14, r61  ; r14 = DRAM address";
    let program = vip_isa::assemble(src).expect("Figure 2 assembles");
    program.to_string()
}

/// A tiny staged write/read used by smoke benches.
#[must_use]
pub fn staging_roundtrip() -> bool {
    let mut hmc = vip_mem::Hmc::new(MemConfig::baseline());
    let data = pattern(64, 1, 3);
    hmc.host_write(0, &i16s_to_bytes(&data));
    vip_kernels::sync::bytes_to_i16s(&hmc.host_read(0, 128)) == data
}

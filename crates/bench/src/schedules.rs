//! The schedule artifact store — moved to
//! [`vip_kernels::schedule_store`] so the serving layer (`vip-serve`)
//! can resolve tuned schedules without depending on the bench crate.
//! This module remains as a re-export for the existing bench call
//! sites and external users of the old path.

pub use vip_kernels::schedule_store::{
    artifact_name, bp_key, conv_key, dir, fc_key, load, load_from, save, DIR_ENV,
};

//! Paper-shaped text reports for each table and figure.

use std::fmt::Write as _;

use vip_baselines::published::{self, vip_paper};
use vip_baselines::{eyeriss, gpu};
use vip_kernels::bp::BpCosts;
use vip_mem::MemConfig;

use crate::experiments::{self, Fig5Point, RooflineEntry, Table4};

/// Table I: the qualitative platform landscape (static, as in the
/// paper).
#[must_use]
pub fn table1() -> String {
    let rows = [
        ("CPU", "Med/High", "Low", "Low", "Very High", "Very High"),
        ("GPU", "High", "Med/High", "High*", "Very High", "Very High"),
        ("FPGA", "Med", "Med", "Med*", "Med", "Med"),
        (
            "Tile-BP", "Very Low", "Med/High", "N/A", "Very Low", "Very Low",
        ),
        ("Eyeriss", "Very Low", "N/A", "Low", "Very Low", "Very Low"),
        ("TPU", "Med", "N/A", "Very High*", "Low", "Low"),
        ("VIP", "Low/Med", "Very High*", "Med*", "High", "High"),
    ];
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table I: qualitative overview (lighter is better; * = 24+ fps)"
    );
    let _ = writeln!(
        s,
        "{:<10} {:<10} {:<12} {:<12} {:<12} {:<12}",
        "Platform", "Power", "Tput(PGM)", "Tput(CNN)", "Prog(PGM)", "Prog(CNN)"
    );
    for (p, pw, tp, tc, pp, pc) in rows {
        let _ = writeln!(s, "{p:<10} {pw:<10} {tp:<12} {tc:<12} {pp:<12} {pc:<12}");
    }
    s
}

/// Table II: the instruction set, printed from the implementation (plus
/// the assembled Figure 2 fragment as a living example).
#[must_use]
pub fn table2() -> String {
    use vip_isa::{BranchCond, HorizontalOp, ScalarAluOp, VerticalOp};
    let mut s = String::new();
    let _ = writeln!(s, "Table II: the VIP instruction set\n");
    let vops: Vec<_> = VerticalOp::all().iter().map(|o| o.mnemonic()).collect();
    let hops: Vec<_> = HorizontalOp::all().iter().map(|o| o.mnemonic()).collect();
    let sops: Vec<_> = ScalarAluOp::all().iter().map(|o| o.mnemonic()).collect();
    let bops: Vec<_> = BranchCond::all().iter().map(|o| o.mnemonic()).collect();
    let _ = writeln!(s, "Vector:     set.{{vl,mr}}, v.drain");
    let _ = writeln!(
        s,
        "            m.v.{{{}}}.{{{}}}",
        vops.join(","),
        hops.join(",")
    );
    let _ = writeln!(s, "            v.v.{{{}}}", vops[..5].join(","));
    let _ = writeln!(s, "            v.s.{{{}}}", vops[..5].join(","));
    let _ = writeln!(s, "Scalar:     {{{}}} (reg-reg / reg-imm)", sops.join(","));
    let _ = writeln!(s, "            mov, mov.imm; {{{}}}, jmp", bops.join(","));
    let _ = writeln!(
        s,
        "Load-store: {{ld,st}}.sram, {{ld,st}}.reg, ld.reg.fe, st.reg.ff, memfence\n"
    );
    let _ = writeln!(s, "Figure 2 fragment, assembled and disassembled:");
    s.push_str(&experiments::figure2_listing());
    s
}

/// Table III: the memory-simulation parameters, printed from the live
/// default configuration.
#[must_use]
pub fn table3() -> String {
    let c = MemConfig::baseline();
    let t = c.timing;
    let mut s = String::new();
    let _ = writeln!(s, "Table III: memory simulation parameters");
    let _ = writeln!(s, "HMC vaults            {}", c.vaults);
    let _ = writeln!(s, "Banks per vault       {}", c.banks_per_vault);
    let _ = writeln!(s, "Rows per bank         {}", c.rows_per_bank);
    let _ = writeln!(s, "Row size              {} B", c.row_bytes);
    let _ = writeln!(
        s,
        "Vault data width      32 bit ({} B per {}-cycle burst)",
        c.col_bytes, c.burst_cycles
    );
    let _ = writeln!(s, "Row buffer policy     {}", c.policy);
    let _ = writeln!(
        s,
        "Address mapping       vault-row-bank-col (vault in high bits)"
    );
    let _ = writeln!(s, "Trans queue depth     {}", c.trans_queue_depth);
    let _ = writeln!(s, "tCK   0.80 ns");
    let _ = writeln!(
        s,
        "tCL   {:5.2} ns   tRCD  {:5.2} ns",
        t.t_cl_ps as f64 / 1e3,
        t.t_rcd_ps as f64 / 1e3
    );
    let _ = writeln!(
        s,
        "tRP   {:5.2} ns   tRAS  {:5.2} ns",
        t.t_rp_ps as f64 / 1e3,
        t.t_ras_ps as f64 / 1e3
    );
    let _ = writeln!(
        s,
        "tWR   {:5.2} ns   tCCD  {:5.2} ns",
        t.t_wr_ps as f64 / 1e3,
        t.t_ccd_ps as f64 / 1e3
    );
    let _ = writeln!(
        s,
        "tRFC  {:5.2} ns   tREFI {:5.2} us",
        t.t_rfc_ps as f64 / 1e3,
        t.t_refi_ps as f64 / 1e6
    );
    s
}

/// Table IV: the end-to-end summary with VIP's simulated numbers next
/// to the paper's reported numbers and the published baselines.
#[must_use]
pub fn table4(t: &Table4) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table IV: end-to-end performance (ours vs. paper)\n");
    let _ = writeln!(s, "-- Markov random fields (full HD, 16 labels) --");
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>12} {:>10}",
        "System", "Iters", "Time (ms)", "Power (W)"
    );
    for b in published::mrf_baselines() {
        let _ = writeln!(
            s,
            "{:<28} {:>10} {:>12.1} {:>10.3}",
            b.system,
            b.iterations.unwrap_or("-"),
            b.time_ms,
            b.power_w
        );
    }
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>12.1} {:>10.2}   (paper: {:.1} ms, {:.1} W)",
        "VIP (baseline BP-M, ours)",
        "8",
        t.bp.baseline_ms,
        t.bp_power_w,
        vip_paper::BP_BASELINE_MS,
        vip_paper::BP_POWER_W,
    );
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>12.1} {:>10.2}   (paper: {:.1} ms)",
        "VIP (hierarchical BP-M)",
        "5",
        t.bp.hierarchical_ms,
        t.bp_power_w,
        vip_paper::BP_HIER_MS,
    );
    let gpu_model = gpu::GpuModel::titan_x_pascal();
    let _ = writeln!(
        s,
        "  [GPU model: {:.1} ms/iter vs. the paper's measured 11.5 ms]",
        gpu_model.run_ms(&BpCosts::full_hd(), 1)
    );

    let _ = writeln!(s, "\n-- VGG-16 convolution layers only --");
    let eyeriss_scaled = eyeriss::ScalingAnalysis::eyeriss_vs_vip();
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>12.1}   (reported, 65 nm / 200 MHz)",
        "Eyeriss", "batch 3", 4309.0
    );
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>12.1}   (area x tech x clock normalized)",
        "Eyeriss-scaled",
        "batch 3",
        eyeriss_scaled.scaled_ms()
    );
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>12.1}   (paper: {:.1} ms)",
        "VIP (ours)",
        "batch 3",
        t.vgg16_conv_b3_ms,
        vip_paper::VGG16_CONV_B3_MS
    );

    let _ = writeln!(s, "\n-- Full networks --");
    for b in published::cnn_baselines() {
        if b.system == "Eyeriss" {
            continue;
        }
        let _ = writeln!(
            s,
            "{:<28} {:>10} {:>12.1}   ({})",
            b.system,
            format!("batch {}", b.batch.unwrap_or(1)),
            b.time_ms,
            b.workload
        );
    }
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>12.1}   (paper: {:.1} ms)",
        "VIP VGG-16 (ours)",
        "batch 1",
        t.vgg16_full_b1_ms,
        vip_paper::VGG16_FULL_B1_MS
    );
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>12.1}   (paper: {:.1} ms)",
        "VIP VGG-16 (ours)",
        "batch 16",
        t.vgg16_full_b16_ms,
        vip_paper::VGG16_FULL_B16_MS
    );
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>12.1}   (paper: {:.1} ms)",
        "VIP VGG-19 (ours)",
        "batch 1",
        t.vgg19_full_b1_ms,
        vip_paper::VGG19_FULL_B1_MS
    );
    let _ = writeln!(
        s,
        "{:<28} {:>10} {:>12.2}   (paper: {:.1} ms)",
        "VIP fc layers (ours)",
        "batch 1",
        t.fc_b1_ms,
        vip_paper::FC_B1_MS
    );
    let _ = writeln!(
        s,
        "\nVIP power (modeled): BP {:.2} W, CNN {:.2} W  (paper: {:.1}-{:.1} W)",
        t.bp_power_w,
        t.cnn_power_w,
        vip_paper::BP_POWER_W,
        vip_paper::CNN_POWER_W
    );
    s
}

/// A roofline table (Figure 3 panels).
#[must_use]
pub fn roofline_table(title: &str, entries: &[RooflineEntry]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "(peak 1280 GOp/s at 16 bit; bandwidth 320 GB/s; knee at 4 Op/B)"
    );
    let _ = writeln!(
        s,
        "{:<8} {:>12} {:>12} {:>14}",
        "kernel", "AI (Op/B)", "GOp/s", "roofline bound"
    );
    for e in entries {
        let bound = 1280.0f64.min(e.ai * 320.0);
        let _ = writeln!(
            s,
            "{:<8} {:>12.2} {:>12.1} {:>14.1}",
            e.name, e.ai, e.gops, bound
        );
    }
    s
}

/// Figure 4's bar data.
#[must_use]
pub fn figure4_table(rows: &[(vip_kernels::bp::VectorMachineStyle, f64)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 4: vertical BP-M updates on a 64x32 tile");
    let _ = writeln!(s, "{:<6} {:>12}", "config", "runtime (ms)");
    for (style, ms) in rows {
        let bar = "#".repeat((ms * 400.0) as usize);
        let _ = writeln!(s, "{:<6} {:>12.4}  {bar}", style.label(), ms);
    }
    s
}

/// Figure 5's bar data.
#[must_use]
pub fn figure5_table(title: &str, rows: &[Fig5Point]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "{:<14} {:>16} {:>12}",
        "config", "bandwidth (GB/s)", "time (ms)"
    );
    for p in rows {
        let bar = "#".repeat((p.bandwidth_gbs / 5.0) as usize);
        let _ = writeln!(
            s,
            "{:<14} {:>16.1} {:>12.2}  {bar}",
            p.config, p.bandwidth_gbs, p.time_ms
        );
    }
    s
}

/// The §VII RTL report.
#[must_use]
pub fn rtl_table(r: &experiments::RtlReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Section VII: area and power (calibrated analytical model)"
    );
    let _ = writeln!(
        s,
        "PE area:        {:>8.3} mm^2   (paper: 0.141 mm^2)",
        r.pe_area_mm2
    );
    let _ = writeln!(
        s,
        "128-PE area:    {:>8.1} mm^2   (paper: 18 mm^2)",
        r.chip_area_mm2
    );
    let _ = writeln!(
        s,
        "BP power / PE:  {:>8.1} mW     (paper: 27 mW)",
        r.bp_pe_mw
    );
    let _ = writeln!(
        s,
        "CNN power / PE: {:>8.1} mW     (paper: 38 mW)",
        r.cnn_pe_mw
    );
    let _ = writeln!(
        s,
        "128-PE power:   {:>5.2} W (BP) to {:.2} W (CNN)   (paper: 3.5-4.8 W)",
        r.bp_pe_mw * 128.0 / 1e3,
        r.cnn_pe_mw * 128.0 / 1e3
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{Fig5Point, RooflineEntry, RtlReport};

    #[test]
    fn table1_lists_every_platform() {
        let t = table1();
        for p in ["CPU", "GPU", "FPGA", "Tile-BP", "Eyeriss", "TPU", "VIP"] {
            assert!(t.contains(p), "missing {p}");
        }
    }

    #[test]
    fn table2_prints_the_full_isa_and_figure2() {
        let t = table2();
        for fragment in [
            "set.{vl,mr}",
            "m.v.{mul,add,sub,min,max,nop}.{add,min,max}",
            "ld.reg.fe",
            "m.v.add.min.i16 r10, r15, r11",
        ] {
            assert!(t.contains(fragment), "missing `{fragment}`");
        }
    }

    #[test]
    fn table3_matches_the_live_configuration() {
        let t = table3();
        assert!(t.contains("HMC vaults            32"));
        assert!(t.contains("open-page"));
        assert!(t.contains("tRFC  81.50 ns"));
        assert!(t.contains("tREFI  1.95 us"));
    }

    #[test]
    fn roofline_table_formats_bounds() {
        let entries = vec![RooflineEntry {
            name: "x".into(),
            ai: 2.0,
            gops: 100.0,
        }];
        let t = roofline_table("T", &entries);
        assert!(
            t.contains("640.0"),
            "bandwidth-bound side: 2 Op/B x 320 GB/s"
        );
    }

    #[test]
    fn figure5_table_scales_bars() {
        let rows = vec![Fig5Point {
            config: "open page",
            bandwidth_gbs: 250.0,
            time_ms: 5.0,
        }];
        let t = figure5_table("T", &rows);
        assert!(t.contains("open page"));
        assert!(t.contains("250.0"));
    }

    #[test]
    fn rtl_table_includes_paper_targets() {
        let r = RtlReport {
            pe_area_mm2: 0.141,
            chip_area_mm2: 18.0,
            bp_pe_mw: 21.0,
            cnn_pe_mw: 30.0,
        };
        let t = rtl_table(&r);
        assert!(t.contains("0.141"));
        assert!(t.contains("paper: 27 mW"));
        assert!(t.contains("3.5-4.8 W"));
    }
}

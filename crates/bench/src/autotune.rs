//! Parallel schedule autotuning over the kernel codegen knobs.
//!
//! The search runs the methodology ROADMAP item 5 asks for: enumerate
//! a kernel's valid schedule grid ([`SearchSpace::enumerate`]), sample
//! it with a seeded shuffle, prune cheaply on the two-tier functional
//! engine, and promote the survivors to full cycle-accurate
//! confirmation. Concretely, per kernel:
//!
//! 1. **Seed** — the stock grid is enumerated (invalid points are
//!    already fenced off by `Schedule::validate`) and, when larger
//!    than the point budget, sampled without replacement by a
//!    [`SplitMix64`] shuffle of the fixed `--seed`.
//! 2. **Halving rungs (functional tier)** — every candidate runs on
//!    [`run_functional`](crate::experiments::PreparedTile::run_functional),
//!    first with a stretched duty cycle (few accurate timing windows —
//!    fast, rough), then the surviving half with the default window
//!    density (slower, ~1% cycle error). Each rung keeps the better
//!    half by estimated cycles.
//! 3. **Confirm (cycle-accurate)** — the last `confirm` survivors plus
//!    the hand-picked default run on the event-driven cycle-accurate
//!    engine; the winner is the point with the fewest *exact* cycles,
//!    ties broken by the schedule encoding, so the result is a total
//!    order independent of thread interleaving.
//!
//! Points execute on a scoped thread pool (`--jobs`) pulling indices
//! from a shared atomic counter — work stealing without a queue
//! structure. Every point goes through the checkpointing
//! [`Runner`], so a killed search resumed with `--resume` skips
//! every finished point (functional rungs are cached at `.done`
//! granularity; the cycle-accurate confirmations also checkpoint
//! mid-run) and reproduces bit-identical results: simulation is
//! deterministic, ranking is a pure function of the results, and
//! artifact serialization is byte-stable.

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use vip_core::FuncConfig;
use vip_kernels::cnn::ConvLayer;
use vip_kernels::schedule::{
    BpSchedule, ConvSchedule, FcSchedule, KernelShape, Schedule, SearchSpace,
};
use vip_mem::MemConfig;
use vip_rng::SplitMix64;

use crate::experiments::{self, PreparedTile, BP_TILE, FC_TILE_LARGE};
use crate::runner::{PointStatus, Runner};
use crate::schedules;

/// One kernel family's tuning target: the dense timing tile the paper's
/// evaluation is built around, in its autotunable shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneKernel {
    /// The 64×32×16 BP-M tile, one iteration.
    Bp,
    /// The deep convolution tile (64→64 channels, 16×8).
    Cnn,
    /// The large fully-connected tile (2048×256).
    Mlp,
}

impl TuneKernel {
    /// Every tunable kernel, in report order.
    pub const ALL: [TuneKernel; 3] = [TuneKernel::Bp, TuneKernel::Cnn, TuneKernel::Mlp];

    /// Report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TuneKernel::Bp => "bp",
            TuneKernel::Cnn => "cnn",
            TuneKernel::Mlp => "mlp",
        }
    }

    fn conv_layer() -> ConvLayer {
        experiments::conv_sim_layer(64, 64)
    }

    /// The artifact-store shape key ([`crate::schedules`]).
    #[must_use]
    pub fn key(self) -> String {
        match self {
            TuneKernel::Bp => {
                let (w, h, l) = BP_TILE;
                schedules::bp_key(w, h, l)
            }
            TuneKernel::Cnn => schedules::conv_key(&Self::conv_layer()),
            TuneKernel::Mlp => {
                let layer = vip_kernels::cnn::FcLayer {
                    name: "tile",
                    inputs: FC_TILE_LARGE.0,
                    outputs: FC_TILE_LARGE.1,
                };
                schedules::fc_key(&layer)
            }
        }
    }

    fn shape(self) -> KernelShape {
        match self {
            TuneKernel::Bp => {
                let (w, h, l) = BP_TILE;
                KernelShape::Bp(w, h, l)
            }
            TuneKernel::Cnn => KernelShape::Conv(Self::conv_layer()),
            TuneKernel::Mlp => KernelShape::Fc(vip_kernels::cnn::FcLayer {
                name: "tile",
                inputs: FC_TILE_LARGE.0,
                outputs: FC_TILE_LARGE.1,
            }),
        }
    }

    fn space(self) -> SearchSpace {
        match self {
            TuneKernel::Bp => SearchSpace::Bp(vip_kernels::schedule::BpSearchSpace::stock()),
            TuneKernel::Cnn => SearchSpace::Conv(vip_kernels::schedule::ConvSearchSpace::stock()),
            TuneKernel::Mlp => SearchSpace::Fc(vip_kernels::schedule::FcSearchSpace::stock()),
        }
    }

    /// The hand-picked default schedule the search must beat.
    #[must_use]
    pub fn default_schedule(self) -> Schedule {
        match self {
            TuneKernel::Bp => Schedule::Bp(BpSchedule::default()),
            TuneKernel::Cnn => Schedule::Conv(ConvSchedule::default_for(&Self::conv_layer(), 2)),
            TuneKernel::Mlp => Schedule::Fc(FcSchedule::default()),
        }
    }

    /// Stages this kernel's timing tile under `sched`.
    ///
    /// # Panics
    ///
    /// Panics if `sched` belongs to a different kernel family.
    #[must_use]
    pub fn stage(self, mem: &MemConfig, sched: &Schedule) -> PreparedTile {
        match (self, sched) {
            (TuneKernel::Bp, Schedule::Bp(s)) => {
                experiments::bp_tile_sim_scheduled(mem.clone(), 1, s)
            }
            (TuneKernel::Cnn, Schedule::Conv(s)) => {
                experiments::conv_tile_sim_scheduled(mem.clone(), &Self::conv_layer(), s)
            }
            (TuneKernel::Mlp, Schedule::Fc(s)) => {
                experiments::fc_tile_sim_scheduled(mem.clone(), FC_TILE_LARGE, s)
            }
            _ => panic!("schedule family does not match kernel {}", self.label()),
        }
    }
}

/// Search parameters.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// Deterministic seed for the sampling shuffle.
    pub seed: u64,
    /// Worker threads pulling points off the shared queue.
    pub jobs: usize,
    /// Point budget per kernel (`0` = the whole valid grid).
    pub sample: usize,
    /// Survivors promoted to cycle-accurate confirmation.
    pub confirm: usize,
    /// Memory preset for the simulated machine.
    pub mem: MemConfig,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            seed: 7,
            jobs: 1,
            sample: 0,
            confirm: 3,
            mem: MemConfig::baseline(),
        }
    }
}

/// One kernel's search outcome.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Which kernel.
    pub kernel: TuneKernel,
    /// The artifact-store shape key.
    pub key: String,
    /// Structural configuration fingerprint of the tuned machine.
    pub fingerprint: u64,
    /// Valid grid points enumerated.
    pub grid: usize,
    /// Points actually searched (after sampling).
    pub searched: usize,
    /// The best schedule found (cycle-accurate winner).
    pub best: Schedule,
    /// Exact cycles of the best schedule.
    pub best_cycles: u64,
    /// Exact cycles of the hand-picked default on the same tile.
    pub default_cycles: u64,
    /// Host seconds this kernel's search took.
    pub wall_s: f64,
}

impl TuneResult {
    /// Fractional improvement of best over default (positive = faster).
    #[must_use]
    pub fn improvement(&self) -> f64 {
        1.0 - self.best_cycles as f64 / self.default_cycles as f64
    }
}

/// A rung-0 functional pass with a stretched duty cycle: ~4x fewer
/// accurate timing windows than the default, trading estimate quality
/// for host speed.
fn rough_func_config() -> FuncConfig {
    FuncConfig {
        stretch_work: FuncConfig::default().stretch_work * 4,
        ..FuncConfig::default()
    }
}

/// Runs `points.len()` jobs on `jobs` scoped threads pulling indices
/// from a shared counter; `run(i)` must be safe to call concurrently.
/// Results land in input order, so downstream ranking is independent
/// of the thread count and interleaving.
fn pull_indices<T: Send>(jobs: usize, n: usize, run: impl Fn(usize) -> T + Sync) -> Vec<Option<T>> {
    let next = AtomicUsize::new(0);
    let results = Mutex::new((0..n).map(|_| None).collect::<Vec<Option<T>>>());
    std::thread::scope(|scope| {
        for _ in 0..jobs.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = run(i);
                results.lock().expect("results lock").insert_result(i, out);
            });
        }
    });
    results.into_inner().expect("results lock")
}

/// `Vec<Option<T>>` slot assignment behind a trait so the closure above
/// stays readable.
trait SlotAssign<T> {
    fn insert_result(&mut self, i: usize, value: T);
}

impl<T> SlotAssign<T> for Vec<Option<T>> {
    fn insert_result(&mut self, i: usize, value: T) {
        self[i] = Some(value);
    }
}

/// Deterministically samples `take` schedules from `all` without
/// replacement (seeded Fisher–Yates prefix). `take == 0` or
/// `take >= all.len()` keeps the whole grid.
fn sample_points(all: Vec<Schedule>, take: usize, seed: u64) -> Vec<Schedule> {
    if take == 0 || take >= all.len() {
        return all;
    }
    let mut rng = SplitMix64::new(seed);
    let mut pool = all;
    for i in 0..take {
        let j = i + rng.usize_in(0..pool.len() - i);
        pool.swap(i, j);
    }
    pool.truncate(take);
    pool
}

/// Ranks `(cycles, schedule)` rows ascending by cycles, ties broken by
/// the schedule encoding — a total order with no dependence on
/// completion order.
fn rank(rows: &mut [(u64, Schedule)]) {
    rows.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| a.1.encoding().cmp(&b.1.encoding()))
    });
}

/// Tunes one kernel through the full pipeline. All durable state goes
/// through `runner` (so `--resume` works mid-search); the returned
/// result is deterministic for a fixed seed regardless of `cfg.jobs`.
///
/// # Errors
///
/// Fails only on I/O errors against the runner's directory.
pub fn tune_kernel(
    kernel: TuneKernel,
    cfg: &TuneConfig,
    runner: &Runner,
) -> io::Result<TuneResult> {
    let started = Instant::now();
    let key = kernel.key();
    let fingerprint = crate::vault_system_config(cfg.mem.clone()).snapshot_fingerprint();
    let grid = kernel.space().enumerate(&kernel.shape());
    let grid_size = grid.len();
    let mut candidates = sample_points(grid, cfg.sample, cfg.seed ^ fingerprint);
    let searched = candidates.len();

    // Halving rungs on the functional tier: rough duty cycle first,
    // default second. Each rung keeps the better half (at least the
    // confirmation count).
    let rungs = [(0usize, Some(rough_func_config())), (1, None)];
    for (rung, func) in rungs {
        if candidates.len() <= cfg.confirm {
            break;
        }
        let run_one = |i: usize| -> io::Result<(u64, Schedule)> {
            let sched = candidates[i];
            let name = format!("tune-{key}@func{rung}");
            let res = runner.run_point_functional(&name, &sched.encoding(), fingerprint, || {
                let tile = kernel.stage(&cfg.mem, &sched);
                match func {
                    Some(f) => tile.with_func_config(f),
                    None => tile,
                }
            })?;
            // A degraded point ranks last but stays recorded.
            let cycles = match res.status {
                PointStatus::Completed => res.cycles,
                PointStatus::Degraded => u64::MAX,
            };
            Ok((cycles, sched))
        };
        let mut rows = Vec::with_capacity(candidates.len());
        for out in pull_indices(cfg.jobs, candidates.len(), run_one) {
            rows.push(out.expect("every index ran")?);
        }
        rank(&mut rows);
        let keep = candidates.len().div_ceil(2).max(cfg.confirm);
        rows.truncate(keep);
        candidates = rows.into_iter().map(|(_, s)| s).collect();
    }

    // Cycle-accurate confirmation: survivors plus the hand-picked
    // default (so the winner's margin is measured, not estimated).
    let default = kernel.default_schedule();
    if !candidates.contains(&default) {
        candidates.push(default);
    }
    let confirm_one = |i: usize| -> io::Result<(u64, Schedule)> {
        let sched = candidates[i];
        let name = format!("tune-{key}@cycle");
        let res = runner.run_point(&name, &sched.encoding(), fingerprint, || {
            kernel.stage(&cfg.mem, &sched)
        })?;
        let cycles = match res.status {
            PointStatus::Completed => res.cycles,
            PointStatus::Degraded => u64::MAX,
        };
        Ok((cycles, sched))
    };
    let mut rows = Vec::with_capacity(candidates.len());
    for out in pull_indices(cfg.jobs, candidates.len(), confirm_one) {
        rows.push(out.expect("every index ran")?);
    }
    let default_cycles = rows
        .iter()
        .find(|(_, s)| *s == default)
        .expect("default was confirmed")
        .0;
    rank(&mut rows);
    let (best_cycles, best) = rows[0];

    Ok(TuneResult {
        kernel,
        key,
        fingerprint,
        grid: grid_size,
        searched,
        best,
        best_cycles,
        default_cycles,
        wall_s: started.elapsed().as_secs_f64(),
    })
}

/// Tunes every kernel in [`TuneKernel::ALL`] and writes the winning
/// schedule artifacts into `out` ([`crate::schedules`] layout). An
/// artifact is written even when the winner *is* the default — the
/// checked-in file then documents that the default survived the
/// search.
///
/// # Errors
///
/// Fails only on I/O errors against the runner's directory or the
/// artifact directory.
pub fn tune_all(
    cfg: &TuneConfig,
    runner: &Runner,
    out: &std::path::Path,
) -> io::Result<Vec<TuneResult>> {
    let mut results = Vec::new();
    for kernel in TuneKernel::ALL {
        let res = tune_kernel(kernel, cfg, runner)?;
        schedules::save(out, &res.key, res.fingerprint, &res.best)?;
        results.push(res);
    }
    Ok(results)
}

/// Renders the `BENCH_autotune.json` report. Every field except
/// `wall_s` and `jobs` is deterministic for a fixed seed.
#[must_use]
pub fn report_json(cfg: &TuneConfig, results: &[TuneResult]) -> String {
    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"kernel\": \"{}\", \"key\": \"{}\", \"fingerprint\": \"{:016x}\", \
                 \"grid_points\": {}, \"searched_points\": {}, \
                 \"default_cycles\": {}, \"best_cycles\": {}, \
                 \"improvement_pct\": {:.2}, \"best_schedule\": \"{}\", \"wall_s\": {:.3}}}",
                r.kernel.label(),
                r.key,
                r.fingerprint,
                r.grid,
                r.searched,
                r.default_cycles,
                r.best_cycles,
                r.improvement() * 100.0,
                r.best.encoding(),
                r.wall_s,
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"autotune\",\n  \"unit_note\": \"default_cycles and best_cycles are \
         exact event-driven cycle counts of each kernel's dense timing tile; improvement_pct = \
         1 - best/default; searches prune on the functional tier and confirm survivors \
         cycle-accurately\",\n  \"seed\": {},\n  \"jobs\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        cfg.seed,
        cfg.jobs,
        entries.join(",\n")
    )
}

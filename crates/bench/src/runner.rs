//! Crash-tolerant experiment running: periodic snapshots, durable
//! per-point results, and resumable sweeps.
//!
//! Each experiment point is identified by a stable 64-bit hash of its
//! name and the structural configuration fingerprint
//! ([`SystemConfig::snapshot_fingerprint`]). The runner keeps two files
//! per point under its working directory:
//!
//! * `<hash>.done` — the finished (or degraded) result row, written
//!   once when the point leaves the runner;
//! * `<hash>.ckpt` — the latest mid-run [`System`] snapshot, rewritten
//!   every `checkpoint_every` simulated cycles and deleted once the
//!   point completes.
//!
//! Every file write goes through write-to-temp-then-rename
//! ([`atomic_write`]), so a crash or SIGKILL at any instant leaves
//! either the old file or the new one on disk, never a torn half-file.
//! A sweep re-run with [`Runner::resume`] skips points that already
//! have a `.done` record and picks interrupted points up from their
//! `.ckpt` snapshot; because restore is bit-exact, the resumed sweep's
//! final report is byte-identical to an uninterrupted one.
//!
//! A point that exhausts its per-point wall-clock budget (or its
//! simulated-cycle limit) degrades instead of aborting the sweep: the
//! runner prints the hang watchdog's structured report to stderr,
//! records a partial row, and moves on to the next point.
//!
//! [`SystemConfig::snapshot_fingerprint`]: vip_core::SystemConfig::snapshot_fingerprint

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use vip_core::{RunOutcome, SimError, System, SystemStats};
use vip_snap::{read_header, write_header, Reader, Snapshot, Writer};

use crate::experiments::PreparedTile;

/// How a point left the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointStatus {
    /// The tile quiesced within all its budgets.
    Completed,
    /// The point hit its wall-clock or simulated-cycle budget (or a
    /// typed simulation error); the recorded row holds the partial
    /// counters at the moment it was abandoned.
    Degraded,
}

/// The durable outcome of one experiment point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The point's sweep-unique name.
    pub name: String,
    /// Completed or degraded.
    pub status: PointStatus,
    /// Simulated cycles covered (to quiescence if completed).
    pub cycles: u64,
    /// Full statistics at that point.
    pub stats: SystemStats,
    /// Whether the result came from a prior run's `.done` record
    /// instead of a fresh simulation.
    pub from_cache: bool,
}

/// Stable identity of an experiment point: its name and full parameter
/// encoding hashed together with the structural configuration
/// fingerprint. Hashing the encoding too means two points that share a
/// name but differ in any schedule or sweep parameter never collide —
/// a `--resume` can't wrongly skip one on the strength of the other's
/// record. Each field is length-prefixed so `("ab", "c")` and
/// `("a", "bc")` hash differently.
#[must_use]
pub fn point_hash(name: &str, encoding: &str, fingerprint: u64) -> u64 {
    let mut bytes = Vec::with_capacity(name.len() + encoding.len() + 24);
    for field in [name, encoding] {
        bytes.extend_from_slice(&(field.len() as u64).to_le_bytes());
        bytes.extend_from_slice(field.as_bytes());
    }
    bytes.extend_from_slice(&fingerprint.to_le_bytes());
    vip_snap::hash_bytes(&bytes)
}

/// Writes `bytes` to `path` via a temporary sibling and an atomic
/// rename, so readers (and crash recovery) only ever observe a
/// complete file.
///
/// # Errors
///
/// Propagates any I/O failure from the write or the rename.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// The checkpointing point runner. Construct with [`Runner::new`], then
/// configure with the builder-style setters.
#[derive(Debug, Clone)]
pub struct Runner {
    dir: PathBuf,
    checkpoint_every: u64,
    budget: Option<Duration>,
    resume: bool,
}

impl Runner {
    /// A runner keeping its durable state under `dir` (created if
    /// missing). Defaults: checkpoint every 1M simulated cycles, no
    /// wall-clock budget, no resume.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Runner {
            dir,
            checkpoint_every: 1_000_000,
            budget: None,
            resume: false,
        })
    }

    /// Simulated cycles between mid-run checkpoints; `0` disables
    /// checkpointing (the point runs straight to its limit).
    #[must_use]
    pub fn checkpoint_every(mut self, cycles: u64) -> Self {
        self.checkpoint_every = cycles;
        self
    }

    /// Per-point wall-clock budget. A point still running when it
    /// expires is abandoned with a structured hang report and a
    /// degraded row; the sweep continues.
    #[must_use]
    pub fn budget(mut self, budget: Option<Duration>) -> Self {
        self.budget = budget;
        self
    }

    /// Whether to reuse `.done` records and `.ckpt` snapshots left by a
    /// previous (possibly killed) run.
    #[must_use]
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// The runner's durable-state directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn done_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.done"))
    }

    fn ckpt_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.ckpt"))
    }

    /// Runs one experiment point to completion (or degradation),
    /// checkpointing along the way. `fingerprint` is the structural
    /// configuration fingerprint of the system the point targets
    /// (callers have it from the config they stage with); passing it
    /// up front lets a `--resume` hit against the `.done` record
    /// return *before* `stage` runs, so cached points skip program
    /// preparation entirely. `stage` builds the point's
    /// [`PreparedTile`] — it is called once normally, and a second
    /// time only if a leftover checkpoint proves unreadable and the
    /// point must restart clean. `encoding` is the point's full
    /// parameter encoding (empty for points whose name alone is the
    /// identity); it is folded into the durable identity hash (see
    /// [`point_hash`]).
    ///
    /// # Errors
    ///
    /// Fails only on I/O errors against the runner's directory; every
    /// simulation failure degrades into a recorded partial row instead.
    ///
    /// # Panics
    ///
    /// Panics if the staged tile's configuration does not hash to
    /// `fingerprint` — that would silently divorce the durable record
    /// from the simulation it claims to describe.
    pub fn run_point(
        &self,
        name: &str,
        encoding: &str,
        fingerprint: u64,
        stage: impl Fn() -> PreparedTile,
    ) -> io::Result<PointResult> {
        let hash = point_hash(name, encoding, fingerprint);
        let done_path = self.done_path(hash);
        let ckpt_path = self.ckpt_path(hash);

        if self.resume {
            if let Some((status, cycles, stats)) = read_done(&done_path, fingerprint) {
                return Ok(PointResult {
                    name: name.to_owned(),
                    status,
                    cycles,
                    stats,
                    from_cache: true,
                });
            }
        }

        let tile = stage();
        assert_eq!(
            tile.system().config().snapshot_fingerprint(),
            fingerprint,
            "point `{name}`: staged tile does not match the declared fingerprint"
        );
        let (mut sys, limit) = tile.into_system();
        if self.resume {
            if let Ok(bytes) = fs::read(&ckpt_path) {
                if let Err(e) = sys.restore_snapshot(&bytes) {
                    // A checkpoint from a different configuration (or a
                    // pre-atomic-write torn file) is discarded; the
                    // restore may have part-written the system, so
                    // restage from scratch.
                    eprintln!("point `{name}`: discarding unusable checkpoint ({e:?})");
                    let (fresh, _) = stage().into_system();
                    sys = fresh;
                }
            }
        }

        let started = Instant::now();
        loop {
            let pause_at = if self.checkpoint_every == 0 {
                limit
            } else {
                sys.now().saturating_add(self.checkpoint_every).min(limit)
            };
            match sys.run_until(pause_at, limit) {
                Ok(RunOutcome::Quiesced(cycles)) => {
                    let stats = sys.stats();
                    self.write_done(&done_path, fingerprint, PointStatus::Completed, &stats)?;
                    let _ = fs::remove_file(&ckpt_path);
                    return Ok(PointResult {
                        name: name.to_owned(),
                        status: PointStatus::Completed,
                        cycles,
                        stats,
                        from_cache: false,
                    });
                }
                Ok(RunOutcome::Paused(_)) => {
                    atomic_write(&ckpt_path, &sys.save_snapshot())?;
                    if self
                        .budget
                        .is_some_and(|budget| started.elapsed() >= budget)
                    {
                        // Leave the checkpoint in place: a later run
                        // with a larger budget can pick the point up.
                        eprintln!(
                            "point `{name}`: wall-clock budget exhausted at cycle {}\n{}",
                            sys.now(),
                            sys.hang_report(limit)
                        );
                        return self.degrade(name, &done_path, fingerprint, &sys);
                    }
                }
                Err(err) => {
                    // Cycle-budget hangs carry the watchdog report;
                    // traps and delivery failures print their own
                    // diagnosis. Either way the sweep continues.
                    eprintln!("point `{name}`: simulation failed: {err}");
                    if !matches!(err, SimError::Hang(_)) {
                        let _ = fs::remove_file(&ckpt_path);
                    }
                    return self.degrade(name, &done_path, fingerprint, &sys);
                }
            }
        }
    }

    /// Runs one point on the two-tier functional engine — the
    /// autotuner's cheap pruning rungs. No mid-run checkpoints (a
    /// functional run is over in milliseconds); the `.done` record
    /// alone makes the point durable, so a killed search re-run with
    /// `--resume` skips every finished point *without re-staging it*
    /// (the `fingerprint` contract matches [`run_point`]'s). The
    /// record shares its format with [`run_point`]'s — callers that
    /// use both engines on the same point must give them distinct
    /// names.
    ///
    /// # Errors
    ///
    /// Fails only on I/O errors against the runner's directory; a
    /// simulation failure is recorded as a degraded row.
    ///
    /// # Panics
    ///
    /// Panics if the staged tile's configuration does not hash to
    /// `fingerprint`.
    pub fn run_point_functional(
        &self,
        name: &str,
        encoding: &str,
        fingerprint: u64,
        stage: impl Fn() -> PreparedTile,
    ) -> io::Result<PointResult> {
        let hash = point_hash(name, encoding, fingerprint);
        let done_path = self.done_path(hash);

        if self.resume {
            if let Some((status, cycles, stats)) = read_done(&done_path, fingerprint) {
                return Ok(PointResult {
                    name: name.to_owned(),
                    status,
                    cycles,
                    stats,
                    from_cache: true,
                });
            }
        }

        let tile = stage();
        assert_eq!(
            tile.system().config().snapshot_fingerprint(),
            fingerprint,
            "point `{name}`: staged tile does not match the declared fingerprint"
        );
        match tile.try_run_functional() {
            Ok(run) => {
                self.write_done(&done_path, fingerprint, PointStatus::Completed, &run.stats)?;
                Ok(PointResult {
                    name: name.to_owned(),
                    status: PointStatus::Completed,
                    cycles: run.cycles,
                    stats: run.stats,
                    from_cache: false,
                })
            }
            Err(err) => {
                eprintln!("point `{name}`: functional run failed: {err}");
                let (sys, _) = stage().into_system();
                self.degrade(name, &done_path, fingerprint, &sys)
            }
        }
    }

    fn degrade(
        &self,
        name: &str,
        done_path: &Path,
        fingerprint: u64,
        sys: &System,
    ) -> io::Result<PointResult> {
        let stats = sys.stats();
        self.write_done(done_path, fingerprint, PointStatus::Degraded, &stats)?;
        Ok(PointResult {
            name: name.to_owned(),
            status: PointStatus::Degraded,
            cycles: sys.now(),
            stats,
            from_cache: false,
        })
    }

    fn write_done(
        &self,
        path: &Path,
        fingerprint: u64,
        status: PointStatus,
        stats: &SystemStats,
    ) -> io::Result<()> {
        let mut w = Writer::new();
        write_header(&mut w, fingerprint);
        w.bool(status == PointStatus::Completed);
        stats.save(&mut w);
        atomic_write(path, &w.into_bytes())
    }

    /// Atomically writes a sweep's final report file under the runner's
    /// directory.
    ///
    /// # Errors
    ///
    /// Propagates any I/O failure from the write or the rename.
    pub fn write_report(&self, file_name: &str, contents: &str) -> io::Result<PathBuf> {
        let path = self.dir.join(file_name);
        atomic_write(&path, contents.as_bytes())?;
        Ok(path)
    }
}

/// Reads a `.done` record back, tolerating absence and rejecting
/// records from another configuration (fingerprint mismatch) or with
/// any form of corruption.
fn read_done(path: &Path, fingerprint: u64) -> Option<(PointStatus, u64, SystemStats)> {
    let bytes = fs::read(path).ok()?;
    let mut r = Reader::new(&bytes);
    read_header(&mut r, fingerprint).ok()?;
    let status = if r.bool().ok()? {
        PointStatus::Completed
    } else {
        PointStatus::Degraded
    };
    let stats = SystemStats::restore(&mut r).ok()?;
    r.finish().ok()?;
    Some((status, stats.cycles, stats))
}

//! Unit tests for the shared CLI plumbing: flag walking, typed value
//! parsing, bad-input rejection, and the environment-variable
//! precedence rules the bench binaries rely on.

use std::path::PathBuf;

use vip_bench::cli::{env_seed, Cli, CliError};
use vip_bench::schedules;

fn args(list: &[&str]) -> impl Iterator<Item = String> + use<> {
    list.iter()
        .map(|s| (*s).to_owned())
        .collect::<Vec<_>>()
        .into_iter()
}

#[test]
fn walks_flags_and_parses_typed_values() {
    let mut cli = Cli::from_args(
        "serve",
        "[--devices <n>] [--dir <path>] [--quick]",
        args(&["--devices", "4", "--quick", "--dir", "out/x"]),
    );
    let mut devices = 0usize;
    let mut quick = false;
    let mut dir = PathBuf::new();
    while let Some(arg) = cli.next_arg() {
        match arg.as_str() {
            "--devices" => devices = cli.value("--devices"),
            "--quick" => quick = true,
            "--dir" => dir = cli.value("--dir"),
            other => panic!("unexpected arg {other}"),
        }
    }
    assert_eq!(devices, 4);
    assert!(quick);
    assert_eq!(dir, PathBuf::from("out/x"));
    assert_eq!(cli.next_arg(), None, "arguments must be exhausted");
}

#[test]
fn rejects_missing_and_malformed_values() {
    // Missing: the flag is the last token.
    let mut cli = Cli::from_args("serve", "", args(&["--devices"]));
    assert_eq!(cli.next_arg().as_deref(), Some("--devices"));
    assert_eq!(
        cli.try_value::<usize>("--devices"),
        Err(CliError::MissingValue("--devices".into()))
    );

    // Malformed: present but not a number.
    let mut cli = Cli::from_args("serve", "", args(&["--devices", "many"]));
    assert_eq!(cli.next_arg().as_deref(), Some("--devices"));
    let err = cli.try_value::<usize>("--devices").unwrap_err();
    assert_eq!(
        err,
        CliError::BadValue {
            flag: "--devices".into(),
            value: "many".into(),
        }
    );
    // The error message names both the flag and the offending token.
    let msg = err.to_string();
    assert!(msg.contains("--devices") && msg.contains("many"), "{msg}");

    // A negative count fails at usize but parses at i64 — the type
    // parameter is what validates.
    let mut cli = Cli::from_args("serve", "", args(&["--delta", "-3"]));
    assert_eq!(cli.next_arg().as_deref(), Some("--delta"));
    assert!(cli.try_value::<usize>("--delta").is_err());
    let mut cli = Cli::from_args("serve", "", args(&["--delta", "-3"]));
    assert_eq!(cli.next_arg().as_deref(), Some("--delta"));
    assert_eq!(cli.try_value::<i64>("--delta"), Ok(-3));
}

/// All environment-variable probes live in one test function: tests in
/// one binary share a process, and `set_var`/`remove_var` race across
/// threads.
#[test]
fn env_var_precedence() {
    // VIP_SCHEDULE_DIR overrides the schedule-store directory; unset,
    // the store falls back to `schedules/`.
    unsafe { std::env::remove_var(schedules::DIR_ENV) };
    assert_eq!(schedules::dir(), PathBuf::from("schedules"));
    unsafe { std::env::set_var(schedules::DIR_ENV, "/tmp/tuned") };
    assert_eq!(schedules::dir(), PathBuf::from("/tmp/tuned"));
    unsafe { std::env::remove_var(schedules::DIR_ENV) };

    // VIP_TEST_SEED overrides the default seed; unset or malformed, the
    // default wins. (Decimal and 0x-prefixed hex both parse.)
    unsafe { std::env::remove_var("VIP_TEST_SEED") };
    assert_eq!(env_seed(7), 7);
    unsafe { std::env::set_var("VIP_TEST_SEED", "41") };
    assert_eq!(env_seed(7), 41);
    unsafe { std::env::set_var("VIP_TEST_SEED", "0x2a") };
    assert_eq!(env_seed(7), 0x2a);
    unsafe { std::env::remove_var("VIP_TEST_SEED") };
    assert_eq!(env_seed(9), 9);
}

//! Autotuner contracts: the search result is a pure function of the
//! seed (thread count changes wall-clock, never the winner), and a
//! SIGKILLed search resumed with `--resume` emits byte-identical
//! schedule artifacts.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use vip_bench::autotune::{tune_kernel, TuneConfig, TuneKernel};
use vip_bench::runner::Runner;

const TUNE: &str = env!("CARGO_BIN_EXE_tune");

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vip-tune-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn jobs_do_not_change_the_search_result() {
    let cfg = TuneConfig {
        seed: 11,
        sample: 4,
        confirm: 1,
        ..TuneConfig::default()
    };

    let mut outcomes = Vec::new();
    for jobs in [1usize, 4] {
        let dir = scratch_dir(&format!("jobs{jobs}"));
        let runner = Runner::new(&dir).expect("runner dir");
        let cfg = TuneConfig {
            jobs,
            ..cfg.clone()
        };
        let res = tune_kernel(TuneKernel::Bp, &cfg, &runner).expect("search runs");
        outcomes.push((res.best, res.best_cycles, res.default_cycles, res.searched));
        let _ = std::fs::remove_dir_all(&dir);
    }

    assert_eq!(
        outcomes[0], outcomes[1],
        "jobs=4 found a different winner than jobs=1 for the same seed"
    );
}

fn tune_args(dir: &Path, out: &Path, resume: bool) -> Vec<String> {
    let mut args = vec![
        "--quick".to_owned(),
        "--kernel".to_owned(),
        "bp".to_owned(),
        "--jobs".to_owned(),
        "2".to_owned(),
        "--dir".to_owned(),
        dir.display().to_string(),
        "--out".to_owned(),
        out.display().to_string(),
    ];
    if resume {
        args.push("--resume".to_owned());
    }
    args
}

fn run_tune(dir: &Path, out: &Path, resume: bool) {
    let status = Command::new(TUNE)
        .args(tune_args(dir, out, resume))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("tune binary runs");
    assert!(status.success(), "tune exited with {status}");
}

/// The single schedule artifact under `out`, as (file name, bytes).
fn artifact(out: &Path) -> (String, Vec<u8>) {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(out)
        .expect("artifact dir")
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 1, "expected exactly one schedule artifact");
    let name = entries[0]
        .file_name()
        .unwrap()
        .to_string_lossy()
        .into_owned();
    (name, std::fs::read(&entries[0]).expect("artifact readable"))
}

fn has_done_record(dir: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    entries
        .flatten()
        .any(|e| e.path().extension().is_some_and(|ext| ext == "done"))
}

#[test]
fn killed_tune_resumes_to_identical_artifacts() {
    let clean_dir = scratch_dir("clean");
    let clean_out = scratch_dir("clean-schedules");
    let killed_dir = scratch_dir("killed");
    let killed_out = scratch_dir("killed-schedules");

    // Reference: an uninterrupted search.
    run_tune(&clean_dir, &clean_out, false);
    let clean_artifact = artifact(&clean_out);

    // Victim: start the same search, wait for the first durable point
    // record, then SIGKILL it mid-search.
    let mut child = Command::new(TUNE)
        .args(tune_args(&killed_dir, &killed_out, false))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("tune binary spawns");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if has_done_record(&killed_dir) {
            break;
        }
        if child.try_wait().expect("child status").is_some() {
            // The search outran the poll and finished cleanly; the
            // resume below is then a no-op and the artifacts must
            // still match.
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no point record appeared in 120s"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let _ = child.kill(); // SIGKILL on unix: no destructors, no flushes
    let _ = child.wait();

    // Resume and compare artifacts against the uninterrupted run,
    // byte for byte.
    run_tune(&killed_dir, &killed_out, true);
    let resumed_artifact = artifact(&killed_out);
    assert_eq!(
        resumed_artifact, clean_artifact,
        "resumed search's artifact differs from the uninterrupted run"
    );

    for dir in [&clean_dir, &clean_out, &killed_dir, &killed_out] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

//! Regression tests for the stepping engine: the event-driven
//! fast-forward path and the sharded per-PE phase must both be
//! bit-identical to naive cycle-by-cycle stepping — same quiesce cycle
//! and the same full `SystemStats` (every counter, including per-cause
//! stall breakdowns, DRAM busy/refresh accounting, and NoC totals).

use vip_bench::experiments::{
    bp_tile_sim, conv_sim_layer, conv_tile_sim, fc_tile_sim, mem_latency_tile_sim, PreparedTile,
};
use vip_mem::MemConfig;

fn assert_engines_identical(name: &str, make: &dyn Fn() -> PreparedTile) {
    let naive = make().run_naive();
    let fast = make().run();
    assert_eq!(
        naive.cycles, fast.cycles,
        "{name}: fast-forward quiesced at a different cycle"
    );
    assert_eq!(
        naive.stats, fast.stats,
        "{name}: fast-forward produced different statistics"
    );
    // Explicit shard count: the machine may resolve auto-sharding to 1
    // on small hosts, so force the threaded path. Two shards, not more:
    // the tiles have 4 PEs and `step` falls back to serial below 2 PEs
    // per shard.
    let sharded = make().with_shards(2).run();
    assert_eq!(
        naive.cycles, sharded.cycles,
        "{name}: sharded stepping quiesced at a different cycle"
    );
    assert_eq!(
        naive.stats, sharded.stats,
        "{name}: sharded stepping produced different statistics"
    );
}

#[test]
fn bp_tile_engines_agree() {
    assert_engines_identical("bp_tile", &|| bp_tile_sim(MemConfig::baseline(), 1));
}

#[test]
fn cnn_conv_tile_engines_agree() {
    assert_engines_identical("cnn_conv_tile", &|| {
        conv_tile_sim(MemConfig::baseline(), &conv_sim_layer(4, 8), 8)
    });
}

#[test]
fn mlp_fc_tile_engines_agree() {
    assert_engines_identical("mlp_fc_tile", &|| fc_tile_sim(MemConfig::baseline()));
}

#[test]
fn mem_latency_chase_engines_agree() {
    assert_engines_identical("mem_latency_chase", &|| {
        mem_latency_tile_sim(MemConfig::baseline(), 512)
    });
}

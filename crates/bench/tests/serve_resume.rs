//! Host-crash durability for the serving binaries: kill `serve` and
//! `chaos` mid-run — with a real SIGKILL and with the
//! `VIP_DURABLE_CRASH` hook that aborts at exact journal/checkpoint
//! write sites — then `--resume`, and the final report must be
//! byte-identical to an uninterrupted run's.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const SERVE: &str = env!("CARGO_BIN_EXE_serve");
const CHAOS: &str = env!("CARGO_BIN_EXE_chaos");

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vip-serve-resume-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `--quick` serving sweep args; durable runs add the journal +
/// checkpoint flags (`--jobs 1` keeps the crash hook's process-wide
/// write counters deterministic).
fn serve_args(dir: &Path, durable: bool, resume: bool) -> Vec<String> {
    let mut args = vec![
        "--dir".to_owned(),
        dir.display().to_string(),
        "--quick".to_owned(),
        "--jobs".to_owned(),
        "1".to_owned(),
    ];
    if durable {
        args.extend(["--checkpoint-every".to_owned(), "8".to_owned()]);
    }
    if resume {
        args.push("--resume".to_owned());
    }
    args
}

fn chaos_args(dir: &Path, durable: bool, resume: bool) -> Vec<String> {
    let mut args = vec![
        "--dir".to_owned(),
        dir.display().to_string(),
        "--quick".to_owned(),
        "--jobs".to_owned(),
        "1".to_owned(),
    ];
    if durable {
        args.extend(["--fleet-checkpoint-every".to_owned(), "8".to_owned()]);
    }
    if resume {
        args.push("--resume".to_owned());
    }
    args
}

fn run_ok(bin: &str, args: &[String]) {
    let status = Command::new(bin)
        .args(args)
        .stdout(Stdio::null())
        .status()
        .expect("binary runs");
    assert!(status.success(), "{bin} exited with {status}");
}

/// Runs the binary with the crash hook armed; it must die abnormally
/// (the hook aborts the process) without having written the report.
fn run_crashed(bin: &str, args: &[String], spec: &str, report: &Path) {
    let status = Command::new(bin)
        .args(args)
        .env("VIP_DURABLE_CRASH", spec)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("binary runs");
    assert!(
        !status.success(),
        "crash hook {spec} did not kill the process (exited {status})"
    );
    assert!(
        !report.exists(),
        "crashed run still published its report ({spec})"
    );
}

/// Any `.ckpt` file under `<dir>/wal/run-*/`.
fn has_fleet_checkpoint(dir: &Path) -> bool {
    let Ok(runs) = std::fs::read_dir(dir.join("wal")) else {
        return false;
    };
    runs.flatten().any(|run| {
        std::fs::read_dir(run.path()).is_ok_and(|files| {
            files
                .flatten()
                .any(|f| f.path().extension().is_some_and(|ext| ext == "ckpt"))
        })
    })
}

/// The crash hook kills `serve` inside every durable write site — a
/// clean inter-record kill, a torn journal append, and a torn
/// checkpoint temporary — and each time `--resume` finishes the run to
/// the exact bytes an uninterrupted (and non-durable) run produces.
#[test]
fn serve_crash_hook_sites_all_resume_to_identical_reports() {
    let clean = scratch_dir("serve-clean");
    run_ok(SERVE, &serve_args(&clean, false, false));
    let reference = std::fs::read(clean.join("BENCH_serving.json")).expect("reference report");

    // event:N = die after the Nth whole journal append; journal:N =
    // die mid-append leaving a torn frame; ckpt:N = die mid-checkpoint
    // leaving a torn temporary.
    for spec in ["event:20", "journal:10", "ckpt:1"] {
        let dir = scratch_dir(&format!("serve-{}", spec.replace(':', "-")));
        let report = dir.join("BENCH_serving.json");
        run_crashed(SERVE, &serve_args(&dir, true, false), spec, &report);
        run_ok(SERVE, &serve_args(&dir, true, true));
        let resumed = std::fs::read(&report).expect("resumed report");
        assert_eq!(
            resumed, reference,
            "resume after {spec} produced a different report"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&clean);
}

/// Same contract for the chaos binary: fleet-level durability composes
/// with injected device failures, and `--fleet-checkpoint-every` is
/// orthogonal to the per-job `--checkpoint-every` recovery cadence.
#[test]
fn chaos_crash_hook_resumes_to_identical_report() {
    let clean = scratch_dir("chaos-clean");
    run_ok(CHAOS, &chaos_args(&clean, false, false));
    let reference = std::fs::read(clean.join("BENCH_chaos.json")).expect("reference report");

    let dir = scratch_dir("chaos-crashed");
    let report = dir.join("BENCH_chaos.json");
    run_crashed(CHAOS, &chaos_args(&dir, true, false), "event:15", &report);
    run_ok(CHAOS, &chaos_args(&dir, true, true));
    let resumed = std::fs::read(&report).expect("resumed report");
    assert_eq!(
        resumed, reference,
        "resumed chaos report differs from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean);
}

/// The unhooked case: a real SIGKILL at whatever point the fleet
/// checkpoint poll catches the run — no destructors, no flushes — then
/// resume, and the report must still match the uninterrupted bytes.
#[test]
fn sigkilled_serve_resumes_to_an_identical_report() {
    let clean = scratch_dir("sigkill-clean");
    run_ok(SERVE, &serve_args(&clean, false, false));
    let reference = std::fs::read(clean.join("BENCH_serving.json")).expect("reference report");

    let killed = scratch_dir("sigkill-victim");
    let mut child = Command::new(SERVE)
        .args(serve_args(&killed, true, false))
        .stdout(Stdio::null())
        .spawn()
        .expect("serve binary spawns");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if has_fleet_checkpoint(&killed) {
            break;
        }
        if child.try_wait().expect("child status").is_some() {
            // The sweep outran the poll and finished cleanly; the
            // resume below then just reloads its done-records.
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint appeared in 60s");
        std::thread::sleep(Duration::from_millis(1));
    }
    let _ = child.kill(); // SIGKILL on unix: no destructors, no flushes
    let _ = child.wait();

    run_ok(SERVE, &serve_args(&killed, true, true));
    let resumed = std::fs::read(killed.join("BENCH_serving.json")).expect("resumed report");
    assert_eq!(
        resumed, reference,
        "resumed serving report differs from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&clean);
    let _ = std::fs::remove_dir_all(&killed);
}

//! Kill-and-resume smoke test: SIGKILL the sweep binary mid-run, resume
//! it, and the final report must be byte-identical to an uninterrupted
//! sweep — the crash-tolerance contract of the checkpointing runner.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const SWEEP: &str = env!("CARGO_BIN_EXE_sweep");

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vip-resume-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sweep_args(dir: &Path, resume: bool) -> Vec<String> {
    let mut args = vec![
        "--dir".to_owned(),
        dir.display().to_string(),
        "--quick".to_owned(),
        "--checkpoint-every".to_owned(),
        "500".to_owned(),
    ];
    if resume {
        args.push("--resume".to_owned());
    }
    args
}

fn run_sweep(dir: &Path, resume: bool) {
    let status = Command::new(SWEEP)
        .args(sweep_args(dir, resume))
        .stdout(Stdio::null())
        .status()
        .expect("sweep binary runs");
    assert!(status.success(), "sweep exited with {status}");
}

fn has_checkpoint(dir: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    entries
        .flatten()
        .any(|e| e.path().extension().is_some_and(|ext| ext == "ckpt"))
}

/// A `--resume` hit on a finished point must return the durable record
/// without re-preparing the point: the staging closure never runs on
/// the cached path (the fingerprint is supplied up front).
#[test]
fn resumed_point_skips_staging() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use vip_bench::experiments;
    use vip_bench::runner::Runner;
    use vip_mem::MemConfig;

    let dir = scratch_dir("stagecount");
    let runner = Runner::new(&dir).expect("runner dir").resume(true);
    let fingerprint = vip_bench::vault_system_config(MemConfig::baseline()).snapshot_fingerprint();
    let staged = AtomicUsize::new(0);
    let stage = || {
        staged.fetch_add(1, Ordering::Relaxed);
        experiments::fc_shape_tile_sim(MemConfig::baseline(), (256, 16))
    };

    let first = runner
        .run_point("stage-count", "", fingerprint, stage)
        .expect("first run");
    assert!(!first.from_cache);
    assert_eq!(staged.load(Ordering::Relaxed), 1);

    let second = runner
        .run_point("stage-count", "", fingerprint, stage)
        .expect("second run");
    assert!(second.from_cache, "second run must hit the .done record");
    assert_eq!(
        staged.load(Ordering::Relaxed),
        1,
        "cached point re-ran its staging closure"
    );
    assert_eq!(first.cycles, second.cycles);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_sweep_resumes_to_an_identical_report() {
    let clean = scratch_dir("clean");
    let killed = scratch_dir("killed");

    // Reference: an uninterrupted sweep.
    run_sweep(&clean, false);
    let clean_report = std::fs::read(clean.join("report.txt")).expect("clean report");

    // Victim: start the same sweep, wait for the first durable
    // checkpoint to land, then SIGKILL it mid-run.
    let mut child = Command::new(SWEEP)
        .args(sweep_args(&killed, false))
        .stdout(Stdio::null())
        .spawn()
        .expect("sweep binary spawns");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if has_checkpoint(&killed) {
            break;
        }
        if child.try_wait().expect("child status").is_some() {
            // The sweep outran the poll and finished cleanly; the
            // resume below is then a no-op and the reports must still
            // match.
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint appeared in 60s");
        std::thread::sleep(Duration::from_millis(1));
    }
    let _ = child.kill(); // SIGKILL on unix: no destructors, no flushes
    let _ = child.wait();

    // Resume and compare against the uninterrupted run, byte for byte.
    run_sweep(&killed, true);
    let resumed_report = std::fs::read(killed.join("report.txt")).expect("resumed report");
    assert_eq!(
        resumed_report, clean_report,
        "resumed sweep's report differs from the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&clean);
    let _ = std::fs::remove_dir_all(&killed);
}

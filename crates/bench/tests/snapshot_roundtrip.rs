//! Mid-kernel save/restore must be invisible: a tile paused at cycle C,
//! snapshotted, restored onto a fresh machine, and run to completion
//! must be bit-identical — cycle count, every statistics counter, and
//! the full machine image — to the same tile run uninterrupted, under
//! each stepping engine and with live fault injection.

use vip_bench::experiments::{self, PreparedTile};
use vip_core::{RunOutcome, System};
use vip_faults::{DramFaultConfig, FaultConfig, NocFaultConfig};
use vip_mem::MemConfig;

#[derive(Debug, Clone, Copy)]
enum Engine {
    /// Event-driven fast-forward.
    Fast,
    /// Cycle-by-cycle reference stepping.
    Naive,
    /// Fast-forward with the per-PE phase sharded across host threads.
    Sharded,
}

fn finish(sys: &mut System, limit: u64, engine: Engine) -> u64 {
    match engine {
        Engine::Fast => sys.run(limit),
        Engine::Naive => sys.run_naive(limit),
        Engine::Sharded => {
            sys.set_step_shards(3);
            sys.run(limit)
        }
    }
    .expect("tile quiesces within its limit")
}

/// Runs `stage`'s tile twice — once straight through, once paused at
/// `pause_at`, snapshotted, and restored onto a freshly staged machine
/// — and asserts the two end states are bit-identical.
fn assert_restore_is_invisible(
    stage: impl Fn() -> PreparedTile,
    pause_at: u64,
    engine: Engine,
    faults: Option<&FaultConfig>,
) {
    // Uninterrupted reference run.
    let (mut base, limit) = stage().into_system();
    if let Some(f) = faults {
        base.set_fault_config(f);
    }
    let base_cycles = finish(&mut base, limit, engine);
    let base_stats = base.stats();
    let base_image = base.save_snapshot();

    // Interrupted run: pause mid-kernel and snapshot.
    let (mut first, limit) = stage().into_system();
    if let Some(f) = faults {
        first.set_fault_config(f);
    }
    match first
        .run_until(pause_at, limit)
        .expect("paused run succeeds")
    {
        RunOutcome::Paused(_) => {}
        RunOutcome::Quiesced(c) => {
            panic!("tile quiesced at cycle {c}, before the mid-kernel pause at {pause_at}")
        }
    }
    let snapshot = first.save_snapshot();

    // Restore onto a fresh machine. The fault configuration travels in
    // the snapshot body, so the restore target does not set it.
    let (mut resumed, limit) = stage().into_system();
    resumed
        .restore_snapshot(&snapshot)
        .expect("snapshot restores onto an identically configured system");
    let cycles = finish(&mut resumed, limit, engine);

    assert_eq!(cycles, base_cycles, "quiesce cycle diverged after restore");
    assert_eq!(
        resumed.stats(),
        base_stats,
        "statistics diverged after restore"
    );
    assert_eq!(
        resumed.save_snapshot(),
        base_image,
        "final machine image diverged after restore"
    );
}

fn bp_tile() -> PreparedTile {
    experiments::bp_tile_sim(MemConfig::baseline(), 1)
}

fn cnn_tile() -> PreparedTile {
    experiments::conv_tile_sim(
        MemConfig::baseline(),
        &experiments::conv_sim_layer(64, 8),
        2,
    )
}

fn mlp_tile() -> PreparedTile {
    experiments::fc_tile_sim(MemConfig::baseline())
}

#[test]
fn bp_tile_roundtrips_under_fast_forward() {
    assert_restore_is_invisible(bp_tile, 20_000, Engine::Fast, None);
}

#[test]
fn bp_tile_roundtrips_under_naive_stepping() {
    assert_restore_is_invisible(bp_tile, 20_000, Engine::Naive, None);
}

#[test]
fn bp_tile_roundtrips_under_sharded_stepping() {
    assert_restore_is_invisible(bp_tile, 20_000, Engine::Sharded, None);
}

#[test]
fn cnn_tile_roundtrips_mid_kernel() {
    assert_restore_is_invisible(cnn_tile, 10_000, Engine::Fast, None);
}

#[test]
fn mlp_tile_roundtrips_mid_kernel() {
    assert_restore_is_invisible(mlp_tile, 10_000, Engine::Fast, None);
}

#[test]
fn bp_tile_roundtrips_with_live_faults() {
    // Nonzero rates on both protected layers: SECDED absorbs the DRAM
    // single-bit flips, CRC + retransmission absorbs the link hits, and
    // the interrupted run must see exactly the same faults as the
    // uninterrupted one.
    let faults = FaultConfig {
        dram: Some(DramFaultConfig {
            seed: 0xD12A_0001,
            single_bit_ppm: 200,
            double_bit_ppm: 0,
        }),
        noc: Some(NocFaultConfig {
            seed: 0xD12A_0002,
            corrupt_ppm: 100,
            drop_ppm: 0,
            max_retries: 8,
            backoff: 4,
        }),
        pe: None,
    };
    assert_restore_is_invisible(bp_tile, 20_000, Engine::Fast, Some(&faults));
}

#[test]
fn restore_rejects_a_mismatched_configuration() {
    let (mut sys, _) = bp_tile().into_system();
    sys.run_until(5_000, 80_000_000).expect("runs");
    let snapshot = sys.save_snapshot();

    // Same tile on a different memory configuration: the structural
    // fingerprint differs, so restore must refuse with a typed error.
    let mut other = System::new(vip_bench::vault_system_config(MemConfig::closed_page()));
    let err = other
        .restore_snapshot(&snapshot)
        .expect_err("fingerprint mismatch is rejected");
    assert!(
        matches!(err, vip_snap::SnapError::ConfigMismatch { .. }),
        "unexpected error: {err:?}"
    );
}

//! End-to-end layer pipeline: conv → pool → fully-connected, chained
//! through DRAM exactly as a network runs, verified against the golden
//! chain.

use vip_core::{System, SystemConfig};
use vip_kernels::cnn::{
    self, conv_tile_programs, pool_tile_programs, ConvLayer, ConvLayout, ConvMode, FcLayer,
    PoolLayer, PoolLayout,
};
use vip_kernels::mlp::{self, FcLayout};
use vip_kernels::schedule::FcSchedule;

fn pattern(n: usize, scale: i16, offset: i16) -> Vec<i16> {
    (0..n)
        .map(|i| ((i * 7 + 3) % 11) as i16 * scale - offset)
        .collect()
}

#[test]
fn conv_pool_fc_pipeline_matches_golden() {
    // A miniature network: 8x8x8 -> conv(8 filters) -> pool -> 4x4x8
    // flattened (128) padded to 256 inputs -> fc(16 outputs).
    let conv_layer = ConvLayer {
        name: "conv",
        in_channels: 8,
        out_channels: 8,
        width: 8,
        height: 8,
        kernel: 3,
        pad: 1,
    };
    let pool_layer = PoolLayer {
        name: "pool",
        channels: 8,
        width: 8,
        height: 8,
    };
    let fc_layer = FcLayer {
        name: "fc",
        inputs: 256,
        outputs: 16,
    };

    let image = pattern(8 * 8 * 8, 1, 5);
    let conv_w = pattern(conv_layer.weights(), 1, 3);
    let conv_b = pattern(8, 1, 2);
    let fc_w = pattern(fc_layer.inputs * fc_layer.outputs, 1, 6);
    let fc_b = pattern(fc_layer.outputs, 2, 8);

    // --- Golden chain ------------------------------------------------
    let padded = cnn::pad_input(8, 8, 8, 1, &image);
    let conv_out = cnn::conv_forward(&conv_layer, &padded, &conv_w, &conv_b, true);
    let pool_out = cnn::max_pool(&pool_layer, &conv_out);
    let pooled_inner = cnn::unpad_output(4, 4, 8, 1, &pool_out);
    let mut fc_in = pooled_inner.clone();
    fc_in.resize(fc_layer.inputs, 0);
    let expect = mlp::fc_forward(&fc_layer, &fc_in, &fc_w, &fc_b, true);

    // --- Simulated chain ---------------------------------------------
    let mut sys = System::new(SystemConfig::small_test());
    let conv_layout = ConvLayout {
        layer: conv_layer,
        input_base: 0,
        weights_base: 0x10_0100,
        bias_base: 0x20_0200,
        output_base: 0x30_0300,
        filters_per_group: 2,
        mode: ConvMode::Full,
    };
    conv_layout.load_into(sys.hmc_mut(), &padded, &conv_w, &conv_b);
    for (pe, p) in conv_tile_programs(&conv_layout, &conv_layout.default_schedule())
        .iter()
        .enumerate()
    {
        sys.load_program(pe, p);
    }
    sys.run(20_000_000).expect("conv completes");

    // Pool reads the conv output in place.
    let pool_layout = PoolLayout {
        layer: pool_layer,
        input_base: conv_layout.output_base,
        output_base: 0x40_0100,
    };
    for (pe, p) in pool_tile_programs(&pool_layout, 4).iter().enumerate() {
        sys.load_program(pe, p);
    }
    sys.run(40_000_000).expect("pool completes");
    assert_eq!(pool_layout.read_output(sys.hmc()), pool_out, "pool output");

    // The host flattens and zero-pads the pooled activations into the
    // fc input vector (layer-boundary restaging; on the full machine
    // this is the §IV-C redistribution of data among vaults).
    let fc_layout = FcLayout {
        layer: fc_layer,
        input_base: 0x50_0200,
        weights_base: 0x60_0300,
        bias_base: 0x70_0100,
        output_base: 0x80_0200,
        relu: true,
    };
    fc_layout.load_into(sys.hmc_mut(), &fc_in, &fc_w, &fc_b);
    for (pe, p) in mlp::fc_tile_programs(&fc_layout, &FcSchedule::default())
        .iter()
        .enumerate()
    {
        sys.load_program(pe, p);
    }
    sys.run(60_000_000).expect("fc completes");

    assert_eq!(fc_layout.read_output(sys.hmc()), expect, "network output");
}

//! Multi-vault integration tests: remote memory access through the
//! torus, cross-vault full-empty synchronization, and a full BP-M run
//! with PEs spread over several vaults.

use vip_core::{System, SystemConfig};
use vip_isa::{assemble, Asm, Reg};
use vip_kernels::bp::{self, bp_iteration_programs, BpLayout, Messages, Mrf, MrfParams};
use vip_kernels::schedule::BpSchedule;
use vip_kernels::sync::{BarrierAddrs, BarrierRegs};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

#[test]
fn remote_vault_access_through_the_torus() {
    // PE 0 (vault 0) writes into vault 3's address range and reads it
    // back; the traffic crosses the torus both ways.
    let cfg = SystemConfig::test_vaults(4);
    let remote_addr = cfg.mem.vault_base(3) + 0x100;
    let mut sys = System::new(cfg);
    let program = assemble(
        "st.reg r1, r2
         memfence
         ld.reg r3, r2
         st.reg r3, r4
         memfence
         halt",
    )
    .unwrap();
    sys.load_program(0, &program);
    sys.set_reg(0, r(1), 0xfeed_beef);
    sys.set_reg(0, r(2), remote_addr);
    sys.set_reg(0, r(4), 0x40); // local copy target in vault 0
    sys.run(100_000).expect("remote access completes");
    assert_eq!(sys.hmc().host_read_u64(remote_addr), 0xfeed_beef);
    assert_eq!(sys.hmc().host_read_u64(0x40), 0xfeed_beef);
    let noc = sys.stats().noc;
    assert!(
        noc.packets >= 4,
        "requests and responses crossed the network"
    );
}

#[test]
fn full_empty_producer_consumer_across_vaults() {
    // PE 7 lives in vault 1; PE 0 in vault 0. The consumer blocks on a
    // full-empty load of a word in vault 0 until the producer publishes.
    let cfg = SystemConfig::test_vaults(2);
    let flag = 0x200u64;
    let mut sys = System::new(cfg);

    // Consumer: ld.reg.fe waits for the flag, stores the received value.
    let consumer = assemble(
        "ld.reg.fe r3, r2
         st.reg r3, r4
         memfence
         halt",
    )
    .unwrap();
    // Producer: compute a value, wait some loop iterations, publish.
    let producer = assemble(
        "mov.imm r5, 0
         mov.imm r6, 500
         delay: addi r5, r5, 1
         blt r5, r6, delay
         st.reg.ff r1, r2
         memfence
         halt",
    )
    .unwrap();
    sys.load_program(0, &consumer);
    sys.set_reg(0, r(2), flag);
    sys.set_reg(0, r(4), 0x400);
    sys.load_program(7, &producer);
    sys.set_reg(7, r(1), 42);
    sys.set_reg(7, r(2), flag);

    sys.run(1_000_000).expect("handoff completes");
    assert_eq!(sys.hmc().host_read_u64(0x400), 42);
    assert!(!sys.hmc().host_is_full(flag), "consumer took the token");
}

#[test]
fn barrier_across_eight_pes_in_two_vaults() {
    let cfg = SystemConfig::test_vaults(2);
    let total = cfg.total_pes();
    assert_eq!(total, 8);
    let addrs = BarrierAddrs::at(0x1000);
    let mut sys = System::new(cfg);
    addrs.init(sys.hmc_mut());

    // Each PE increments a private slot before the barrier, then after
    // the barrier reads *every* slot and stores the sum. If the barrier
    // leaks anyone early, some slot is still zero and the sum is short.
    for pe in 0..total {
        let mut asm = Asm::new();
        let regs = BarrierRegs {
            my_gen: r(1),
            tmp: r(2),
            addr_cnt: r(3),
            addr_gen: r(4),
            n: r(5),
            zero: r(6),
        };
        asm.mov_imm(r(1), 0)
            .mov_imm(r(10), 0x2000 + (pe as i64) * 8) // my slot
            .mov_imm(r(11), (pe + 1) as i64)
            .st_reg(r(11), r(10))
            .memfence();
        vip_kernels::sync::emit_barrier(&mut asm, &regs, addrs, total as u64, "b");
        // Sum all slots.
        asm.mov_imm(r(12), 0) // sum
            .mov_imm(r(13), 0x2000) // cursor
            .mov_imm(r(14), total as i64)
            .mov_imm(r(15), 0)
            .label("sum")
            .ld_reg(r(16), r(13))
            .add(r(12), r(12), r(16))
            .addi(r(13), r(13), 8)
            .addi(r(15), r(15), 1)
            .blt(r(15), r(14), "sum")
            .mov_imm(r(17), 0x3000 + (pe as i64) * 8)
            .st_reg(r(12), r(17))
            .memfence()
            .halt();
        sys.load_program(pe, &asm.assemble().unwrap());
    }
    sys.run(2_000_000).expect("barrier run completes");
    let expect = (1..=total as u64).sum::<u64>();
    for pe in 0..total {
        assert_eq!(
            sys.hmc().host_read_u64(0x3000 + (pe as u64) * 8),
            expect,
            "PE {pe} saw all slots after the barrier"
        );
    }
}

#[test]
fn bp_iteration_with_eight_pes_across_two_vaults() {
    // The full BP-M schedule with PEs in two vaults: vault 1's PEs reach
    // the MRF (resident in vault 0) through the torus, and the barrier
    // spans vaults. Output must still match golden bit-for-bit.
    let (w, h, l) = (64, 64, 8);
    let costs = bp::stereo_data_costs(w, h, l, 3);
    let mrf = Mrf::new(MrfParams::truncated_linear(w, h, l, 2, 10), costs);
    let layout = BpLayout::new(0, w, h, l);

    let cfg = SystemConfig::test_vaults(2);
    let mut sys = System::new(cfg);
    layout.load_into(sys.hmc_mut(), &mrf, &Messages::new(&mrf.params));
    let programs = bp_iteration_programs(
        &layout,
        &BpSchedule {
            pes: 8,
            ..BpSchedule::default()
        },
        1,
        true,
    );
    for (pe, p) in programs.iter().enumerate() {
        sys.load_program(pe, p);
    }
    sys.run(60_000_000).expect("cross-vault BP completes");

    let mut expect = Messages::new(&mrf.params);
    bp::iteration(&mrf, &mut expect);
    let got = layout.read_messages(sys.hmc(), true);
    assert_eq!(got.from_above, expect.from_above);
    assert_eq!(got.from_below, expect.from_below);
    assert_eq!(got.from_left, expect.from_left);
    assert_eq!(got.from_right, expect.from_right);

    // Remote traffic really happened.
    assert!(
        sys.stats().noc.packets > 1000,
        "vault 1's PEs worked remotely"
    );
}

//! End-to-end fault-injection sweep: a multi-vault workload whose
//! traffic crosses the torus is run under simultaneous DRAM, NoC, and
//! PE injection across several seeds. The sweep is the CI smoke test
//! for the whole robustness subsystem: SECDED absorbs the DRAM hits,
//! CRC + retransmission absorbs the link hits, nothing panics, and
//! every outcome — including the deliberately-provoked failure paths —
//! is a typed error reproducible from the seed.

use vip_core::{SimError, System, SystemConfig, SystemStats};
use vip_faults::{DramFaultConfig, FaultConfig, NocFaultConfig, PeFaultConfig};
use vip_isa::{assemble, Program, Reg};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// A ping-pong workload: PE 0 (vault 0) streams stores into vault 3,
/// reads them back, and re-publishes locally — every access crosses the
/// torus twice, so NoC faults get plenty of link traversals to land on.
fn cross_vault_program() -> Program {
    assemble(
        "mov.imm r6, 0
         loop: st.reg r1, r2
         memfence
         ld.reg r3, r2
         addi r2, r2, 8
         addi r1, r1, 1
         st.reg r3, r4
         addi r4, r4, 8
         addi r5, r5, -1
         bne r5, r6, loop
         memfence
         halt",
    )
    .unwrap()
}

const ROUNDS: u64 = 32;

fn run_sweep_case(faults: &FaultConfig) -> Result<(SystemStats, Vec<u64>), SimError> {
    let cfg = SystemConfig::test_vaults(4).with_faults(faults);
    let remote_base = cfg.mem.vault_base(3) + 0x100;
    let mut sys = System::new(cfg);
    sys.load_program(0, &cross_vault_program());
    sys.set_reg(0, r(1), 0x1000);
    sys.set_reg(0, r(2), remote_base);
    sys.set_reg(0, r(4), 0x40);
    sys.set_reg(0, r(5), ROUNDS);
    sys.run(2_000_000)?;
    let copied = (0..ROUNDS)
        .map(|i| sys.hmc().host_read_u64(0x40 + i * 8))
        .collect();
    Ok((sys.stats(), copied))
}

fn expected_copies() -> Vec<u64> {
    (0..ROUNDS).map(|i| 0x1000 + i).collect()
}

#[test]
fn sweep_recovers_from_simultaneous_dram_and_noc_faults() {
    // Moderate rates across three seeds: the run must complete with
    // golden data every time, and across the sweep both recovery
    // mechanisms must demonstrably have fired.
    let mut total_corrected = 0;
    let mut total_link_faults = 0;
    for seed in [0xa0, 0xa1, 0xa2] {
        let faults = FaultConfig {
            dram: Some(DramFaultConfig {
                seed,
                single_bit_ppm: 20_000,
                double_bit_ppm: 0,
            }),
            noc: Some(NocFaultConfig {
                seed,
                corrupt_ppm: 20_000,
                drop_ppm: 10_000,
                max_retries: 16,
                backoff: 4,
            }),
            pe: None,
        };
        let (stats, copied) = run_sweep_case(&faults)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: recoverable-rate sweep failed: {e}"));
        assert_eq!(copied, expected_copies(), "seed {seed:#x}: data corrupted");
        assert_eq!(stats.mem.ecc_uncorrectable, 0, "seed {seed:#x}");
        assert_eq!(stats.noc.delivery_failures, 0, "seed {seed:#x}");
        assert_eq!(
            stats.noc.retries,
            stats.noc.crc_detected + stats.noc.dropped,
            "seed {seed:#x}: every link fault costs exactly one retry"
        );
        total_corrected += stats.mem.ecc_corrected;
        total_link_faults += stats.noc.retries;
    }
    assert!(total_corrected > 0, "no DRAM fault fired across the sweep");
    assert!(total_link_faults > 0, "no NoC fault fired across the sweep");
}

#[test]
fn double_bit_faults_surface_as_a_typed_machine_check() {
    // Crank double-bit flips high enough that a load is guaranteed to
    // consume poisoned data: the run must end in UncorrectableMemory
    // naming the consuming PE — never a panic.
    let faults = FaultConfig {
        dram: Some(DramFaultConfig {
            seed: 0xbad,
            single_bit_ppm: 0,
            double_bit_ppm: 200_000,
        }),
        noc: None,
        pe: None,
    };
    match run_sweep_case(&faults) {
        Err(SimError::UncorrectableMemory { pe, .. }) => assert_eq!(pe, 0),
        other => panic!("expected a machine check, got {other:?}"),
    }
}

#[test]
fn exhausted_retransmission_budget_is_a_typed_delivery_failure() {
    // With a sky-high drop rate and almost no retry budget, some packet
    // will exhaust its retransmissions; the NoC reports which link gave
    // up rather than hanging or panicking.
    let faults = FaultConfig {
        dram: None,
        noc: Some(NocFaultConfig {
            seed: 0xdead,
            corrupt_ppm: 0,
            drop_ppm: 600_000,
            max_retries: 1,
            backoff: 1,
        }),
        pe: None,
    };
    match run_sweep_case(&faults) {
        Err(SimError::NocDeliveryFailed { .. }) => {}
        other => panic!("expected a delivery failure, got {other:?}"),
    }
}

#[test]
fn unprotected_writeback_upsets_are_counted_but_silent() {
    // The register file has no ECC: a low-rate writeback upset must not
    // crash the machine, and the flip counter records the exposure even
    // when the corrupted register never changes an outcome. Outcomes
    // may legitimately differ from golden here — the assertion is that
    // whatever happens is a typed outcome, reproducible from the seed.
    for seed in [0xc0, 0xc1] {
        let faults = FaultConfig {
            dram: None,
            noc: None,
            pe: Some(PeFaultConfig {
                seed,
                writeback_flip_ppm: 5_000,
            }),
        };
        let a = run_sweep_case(&faults);
        let b = run_sweep_case(&faults);
        assert_eq!(a, b, "seed {seed:#x}: outcome must replay exactly");
        if let Ok((stats, copied)) = a {
            // No flip landed on a load-bearing bit this seed — then the
            // data must be untouched (flips only ever hit writebacks).
            if stats.pe.writeback_flips == 0 {
                assert_eq!(copied, expected_copies(), "seed {seed:#x}");
            }
        }
    }
}

#[test]
fn sweep_outcomes_are_independent_of_the_stepping_engine() {
    // The determinism contract under LIVE faults: naive and
    // fast-forward stepping see the identical fault pattern because
    // draws key off architectural coordinates, not wall-clock event
    // order.
    let faults = FaultConfig {
        dram: Some(DramFaultConfig {
            seed: 0xe0,
            single_bit_ppm: 20_000,
            double_bit_ppm: 0,
        }),
        noc: Some(NocFaultConfig {
            seed: 0xe0,
            corrupt_ppm: 20_000,
            drop_ppm: 0,
            max_retries: 16,
            backoff: 4,
        }),
        pe: None,
    };
    let cfg = SystemConfig::test_vaults(4).with_faults(&faults);
    let remote_base = cfg.mem.vault_base(3) + 0x100;
    let run = |naive: bool| {
        let mut sys = System::new(cfg.clone());
        sys.load_program(0, &cross_vault_program());
        sys.set_reg(0, r(1), 0x1000);
        sys.set_reg(0, r(2), remote_base);
        sys.set_reg(0, r(4), 0x40);
        sys.set_reg(0, r(5), ROUNDS);
        if naive {
            sys.run_naive(2_000_000).unwrap();
        } else {
            sys.run(2_000_000).unwrap();
        }
        sys.stats()
    };
    assert_eq!(run(true), run(false), "fault pattern depends on engine");
}

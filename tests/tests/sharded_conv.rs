//! Cross-vault channel-sharded convolution (§IV-B): each vault convolves
//! its channel shard against locally-resident activations, then an
//! accumulation pass on one vault pulls the partial sums across the
//! torus, adds biases, and applies ReLU.

use vip_core::{System, SystemConfig};
use vip_kernels::cnn::{
    self, accumulate_program, conv_tile_programs, AccumulateLayout, ConvLayer, ConvLayout, ConvMode,
};
use vip_kernels::sync::{bytes_to_i16s, i16s_to_bytes};

fn pattern(n: usize, scale: i16, offset: i16) -> Vec<i16> {
    (0..n)
        .map(|i| ((i * 7 + 3) % 11) as i16 * scale - offset)
        .collect()
}

#[test]
fn shards_on_two_vaults_accumulate_remotely() {
    let full = ConvLayer {
        name: "deep",
        in_channels: 8,
        out_channels: 4,
        width: 8,
        height: 4,
        kernel: 3,
        pad: 1,
    };
    let shard = ConvLayer {
        in_channels: 4,
        ..full
    };
    let input_full = pattern(8 * 4 * 8, 1, 5);
    let weights_full = pattern(full.weights(), 1, 3);
    let bias = pattern(4, 2, 4);

    let split = |lo: usize, per_px: &[i16], stride: usize| -> Vec<i16> {
        per_px
            .chunks(stride)
            .flat_map(|px| px[lo..lo + 4].to_vec())
            .collect()
    };
    let in_shards = [split(0, &input_full, 8), split(4, &input_full, 8)];
    let w_shards = [split(0, &weights_full, 8), split(4, &weights_full, 8)];

    let cfg = SystemConfig::test_vaults(2);
    let vault1 = cfg.mem.vault_base(1);
    let mut sys = System::new(cfg);

    // Shard s lives entirely in vault s; both run concurrently, each on
    // its own vault's 4 PEs.
    let mut partial_bases = Vec::new();
    let mut layouts = Vec::new();
    for (s, (inp, w)) in in_shards.iter().zip(&w_shards).enumerate() {
        let base = (s as u64) * vault1;
        let layout = ConvLayout {
            layer: shard,
            input_base: base,
            weights_base: base + 0x10_0100,
            bias_base: base + 0x20_0200,
            output_base: base + 0x30_0300,
            filters_per_group: 2,
            mode: ConvMode::Partial,
        };
        partial_bases.push(layout.output_base);
        let padded = cnn::pad_input(8, 4, 4, 1, inp);
        layout.load_into(sys.hmc_mut(), &padded, w, &[0; 4]);
        for (i, p) in conv_tile_programs(&layout, &layout.default_schedule())
            .iter()
            .enumerate()
        {
            sys.load_program(s * 4 + i, p);
        }
        layouts.push(layout);
    }
    sys.run(30_000_000)
        .expect("both shards complete in parallel");

    // Accumulation on vault 0's PEs: one partial is remote.
    let acc = AccumulateLayout {
        layer: full,
        partial_bases,
        bias_row_base: 0x40_0100,
        output_base: 0x50_0200,
    };
    sys.hmc_mut().host_write(
        acc.bias_row_base,
        &i16s_to_bytes(&cnn::replicate_bias(&full, &bias)),
    );
    for (i, p) in accumulate_program(&acc, 4).iter().enumerate() {
        sys.load_program(i, p);
    }
    let noc_before = sys.stats().noc.packets;
    sys.run(60_000_000).expect("accumulation completes");
    assert!(
        sys.stats().noc.packets > noc_before,
        "the accumulate pass pulled vault 1's partials over the torus"
    );

    // Golden sharded pipeline.
    let p0 = cnn::conv_partial(
        &shard,
        &cnn::pad_input(8, 4, 4, 1, &in_shards[0]),
        &w_shards[0],
    );
    let p1 = cnn::conv_partial(
        &shard,
        &cnn::pad_input(8, 4, 4, 1, &in_shards[1]),
        &w_shards[1],
    );
    let expect = cnn::relu_bias_sum(&full, &[&p0, &p1], &bias, true);
    let n = cnn::padded_len(8, 4, 4, 1) * 2;
    let got = bytes_to_i16s(&sys.hmc().host_read(acc.output_base, n));
    assert_eq!(
        cnn::unpad_output(8, 4, 4, 1, &got),
        cnn::unpad_output(8, 4, 4, 1, &expect),
        "remote-accumulated output"
    );
}

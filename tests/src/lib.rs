//! Host crate for the repository-level integration tests (see the
//! sibling `tests/` directory). The interesting code is in the test
//! files; this library is intentionally empty.
